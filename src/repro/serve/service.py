"""The asyncio evaluation service: micro-batched, admission-controlled.

One long-lived process answers many concurrent scenario queries against
a shared fabric model — the multi-tenant regime the roadmap targets,
versus the one-shot CLI that pays interpreter startup and cold caches
per query. The moving parts:

* **Admission control** — a bounded queue in front of the batcher. When
  it is full, ``submit`` raises :class:`QueueFull` and the HTTP layer
  answers 429 with a ``Retry-After`` header, so overload degrades into
  fast rejections instead of unbounded latency.
* **Micro-batching** — the batcher coalesces queued requests until the
  batch is full (``max_batch``) or the oldest request has lingered
  ``linger_ms``, then evaluates the batch through
  :func:`repro.api.run_many` on a session leased from the pool.
  Batching lets :func:`run_many` deduplicate identical concurrent specs
  and lets one session amortize topology artifacts across the batch.
* **A session pool** — ``jobs`` persistent
  :class:`~repro.api.session.FabricSession` instances sharing one
  :class:`~repro.api.cache.DiskResultCache`, so every worker sees every
  other worker's results and a warm cache survives restarts. The
  batcher leases a session *before* collecting a batch, which is what
  makes the admission bound exact: when all sessions are busy, requests
  wait in the bounded queue, not in hidden batcher state.
* **Graceful shutdown** — ``drain()`` stops admissions (503 for new
  requests), flushes everything already accepted through the batcher,
  and waits for in-flight batches, so SIGTERM never drops an accepted
  request or truncates a response.

The HTTP front end (:class:`ReproServer`) frames this over
``asyncio.start_server`` — see :mod:`repro.serve.wire` for the framing —
and serves ``POST /v1/evaluate`` plus ``GET /healthz`` and
``GET /metrics`` backed by a :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from ..api.backends import UnsupportedOutput, available_backends
from ..api.batch import SpecRun, run_many
from ..api.cache import (
    CacheStats,
    DiskResultCache,
    NullResultCache,
    ResultCache,
    default_cache_dir,
)
from ..api.session import FabricSession
from ..api.spec import ScenarioSpec
from ..obs import log as obs_log
from ..obs import prometheus
from ..obs.log import NULL_LOG, EventLog
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import (
    NULL_RUNTIME_TRACER,
    RuntimeTracer,
    new_trace_id,
    valid_trace_id,
)
from . import wire

__all__ = [
    "DEFAULT_PORT",
    "ServerConfig",
    "QueueFull",
    "ShuttingDown",
    "EvaluateRequestError",
    "parse_evaluate_request",
    "EvaluationService",
    "ReproServer",
    "ServerThread",
    "run_server",
]

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8421


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one evaluation service instance.

    Attributes:
        host: interface to bind.
        port: TCP port to bind (0 = ephemeral; the bound port is
            exposed as ``ReproServer.port`` / ``ServerThread.port``).
        jobs: persistent sessions in the pool = concurrently evaluating
            batches.
        max_batch: requests coalesced into one batch at most.
        linger_ms: how long the batcher waits for the batch to fill
            before flushing a partial one.
        queue_limit: admitted-but-unbatched requests at most; overflow
            is rejected with 429.
        batch_shed_fraction: fraction of ``queue_limit`` past which
            ``batch``-priority requests are shed with 429 while
            ``interactive`` requests are still admitted — overload
            degrades the background class first, keeping interactive
            p99 bounded. ``1.0`` disables the distinction.
        request_timeout_s: per-request evaluation deadline; exceeding it
            answers 504 (the batch keeps running and still warms the
            cache).
        retry_after_s: value of the ``Retry-After`` header on 429.
        cache_dir: directory of the shared
            :class:`~repro.api.cache.DiskResultCache` (``None`` =
            :func:`~repro.api.cache.default_cache_dir`).
        no_cache: run without any persistent result cache.
        cache_max_entries: oldest-first eviction cap on the disk cache's
            entry count (``None`` = unbounded).
        cache_max_bytes: same cap in payload bytes.
        trace_dir: directory the process writes its wall-clock
            :class:`~repro.obs.runtime.RuntimeTracer` timeline into on
            drain (``None`` = runtime tracing off, the zero-overhead
            default).
        trace_name: process track label inside the trace file
            (``None`` = ``serve``; the shard router names its workers
            ``w0``, ``w1``, ...).
        log_level: minimum severity of the structured JSONL event log
            on stderr (``debug`` logs every request; the ``info``
            default logs lifecycle only).
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    jobs: int = 2
    max_batch: int = 8
    linger_ms: float = 2.0
    queue_limit: int = 64
    batch_shed_fraction: float = 0.5
    request_timeout_s: float = 60.0
    retry_after_s: float = 1.0
    cache_dir: str | Path | None = None
    no_cache: bool = False
    cache_max_entries: int | None = None
    cache_max_bytes: int | None = None
    trace_dir: str | Path | None = None
    trace_name: str | None = None
    log_level: str = "info"

    def __post_init__(self) -> None:
        if self.log_level not in obs_log.LEVELS:
            raise ValueError(
                f"unknown log_level {self.log_level!r}; choose from "
                f"{list(obs_log.LEVELS)}"
            )
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive, got {self.jobs}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.linger_ms < 0:
            raise ValueError(f"linger_ms cannot be negative, got {self.linger_ms}")
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be positive, got {self.queue_limit}"
            )
        if not 0 < self.batch_shed_fraction <= 1:
            raise ValueError(
                f"batch_shed_fraction must be in (0, 1], got "
                f"{self.batch_shed_fraction}"
            )
        if self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be positive, got {self.request_timeout_s}"
            )
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")

    @property
    def batch_queue_limit(self) -> int:
        """Queue depth past which ``batch`` requests are shed (at least 1)."""
        return max(1, int(self.queue_limit * self.batch_shed_fraction))


class EvaluateRequestError(Exception):
    """An evaluate request the service must reject before admission.

    Attributes:
        status: HTTP status to answer with.
        code: machine-readable error code for the JSON envelope.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


def parse_evaluate_request(
    request: wire.Request,
) -> tuple[ScenarioSpec, str]:
    """Parse and validate one ``POST /v1/evaluate`` request.

    Shared by the single-process front end and the shard router (which
    must parse the spec anyway to compute its routing key).

    Returns:
        ``(spec, priority)``.

    Raises:
        EvaluateRequestError: on a malformed body, invalid spec, unknown
            fabric, or unknown priority header.
    """
    try:
        payload = request.json()
    except wire.ProtocolError as exc:
        raise EvaluateRequestError(exc.status, "bad_json", str(exc)) from exc
    if isinstance(payload, dict) and isinstance(payload.get("spec"), dict):
        payload = payload["spec"]
    if not isinstance(payload, dict):
        raise EvaluateRequestError(
            400, "bad_request", "request body must be a ScenarioSpec object"
        )
    try:
        spec = ScenarioSpec.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise EvaluateRequestError(
            400, "bad_spec", f"invalid spec: {exc}"
        ) from exc
    if spec.fabric not in available_backends():
        raise EvaluateRequestError(
            400,
            "bad_spec",
            f"unknown fabric {spec.fabric!r}; registered backends: "
            f"{list(available_backends())}",
        )
    priority = request.headers.get(
        wire.PRIORITY_HEADER.lower(), wire.DEFAULT_PRIORITY
    )
    if priority not in wire.PRIORITIES:
        raise EvaluateRequestError(
            400,
            "bad_priority",
            f"unknown {wire.PRIORITY_HEADER} {priority!r}; expected one "
            f"of {list(wire.PRIORITIES)}",
        )
    return spec, priority


class QueueFull(Exception):
    """The admission queue is at ``queue_limit``; retry later (429).

    Attributes:
        retry_after_s: suggested client backoff.
    """

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"admission queue full; retry after {retry_after_s:g} s"
        )
        self.retry_after_s = retry_after_s


class ShuttingDown(Exception):
    """The service is draining and admits no new requests (503)."""


@dataclass
class _Pending:
    """One admitted request waiting for its batch.

    ``trace_id``/``trace_start`` ride along here because the batcher
    evaluates in an executor thread, where contextvars from the
    admitting coroutine are not reliably visible — the batch maps 1:1
    onto its pending entries, so explicit plumbing is exact.
    """

    spec: ScenarioSpec
    future: asyncio.Future
    priority: str = wire.DEFAULT_PRIORITY
    admitted_at: float = field(default_factory=time.monotonic)
    trace_id: str | None = None
    trace_start: float = 0.0


def _default_evaluate_batch(
    session: FabricSession, specs: Sequence[ScenarioSpec]
) -> list[SpecRun]:
    """Evaluate one batch on one pooled session (runs in the executor).

    ``run_many`` with an explicit session deduplicates identical specs
    inside the batch and returns one ordered row per request, carrying
    cache provenance the HTTP layer surfaces as ``X-Repro-Cache``.
    """
    return list(run_many(specs, session=session).runs)


class EvaluationService:
    """Micro-batching evaluation core, independent of the HTTP framing.

    Attributes:
        config: the service tunables.
        metrics: the registry ``/metrics`` snapshots (queue depth,
            batch-size and latency histograms, admission counters).
        log: the structured event log (``NULL_LOG`` when unset).
        runtime: the wall-clock tracer (``NULL_RUNTIME_TRACER`` when
            unset — the zero-overhead default).
    """

    def __init__(
        self,
        config: ServerConfig,
        metrics: MetricsRegistry | None = None,
        evaluate_batch: Callable[
            [FabricSession, Sequence[ScenarioSpec]], list[SpecRun]
        ] | None = None,
        log: EventLog | None = None,
        runtime: RuntimeTracer | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.log = log if log is not None else NULL_LOG
        self.runtime = runtime if runtime is not None else NULL_RUNTIME_TRACER
        self._evaluate_batch = evaluate_batch or _default_evaluate_batch
        self._result_cache = self._build_cache(config, self.log)
        self._sessions = [
            FabricSession(result_cache=self._result_cache, runtime=self.runtime)
            for _ in range(config.jobs)
        ]
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue(
            maxsize=config.queue_limit
        )
        self._session_pool: asyncio.Queue[FabricSession] = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=config.jobs, thread_name_prefix="repro-serve"
        )
        self._inflight: set[asyncio.Task] = set()
        self._batcher: asyncio.Task | None = None
        self._draining = False
        self._drain_wakeup = asyncio.Event()
        self.started_at = time.monotonic()

    @staticmethod
    def _build_cache(config: ServerConfig, log: EventLog) -> ResultCache:
        if config.no_cache:
            return NullResultCache()
        root = (
            Path(config.cache_dir).expanduser()
            if config.cache_dir is not None
            else default_cache_dir()
        )
        return DiskResultCache(
            root,
            max_entries=config.cache_max_entries,
            max_bytes=config.cache_max_bytes,
            log=log,
        )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start the batcher; call from a running event loop."""
        for session in self._sessions:
            self._session_pool.put_nowait(session)
        self._batcher = asyncio.get_running_loop().create_task(
            self._batch_loop(), name="repro-serve-batcher"
        )

    async def drain(self) -> None:
        """Stop admissions, flush the queue, wait for in-flight batches."""
        self._draining = True
        self._drain_wakeup.set()
        if self._batcher is not None:
            await self._batcher
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        self._executor.shutdown(wait=True)

    @property
    def draining(self) -> bool:
        """Whether the service has begun its graceful shutdown."""
        return self._draining

    # -- admission ---------------------------------------------------------------

    def submit(
        self,
        spec: ScenarioSpec,
        priority: str = wire.DEFAULT_PRIORITY,
        trace_id: str | None = None,
    ) -> asyncio.Future:
        """Admit ``spec``; the future resolves to its :class:`SpecRun`.

        ``batch``-priority requests are held to a tighter admission
        bound (``config.batch_queue_limit``) than ``interactive`` ones,
        so overload sheds the background class first. ``trace_id``, when
        given, is stamped on the spans this request leaves in the
        runtime tracer.

        Raises:
            ShuttingDown: the service is draining (map to 503).
            QueueFull: the admission queue is at its limit for this
                priority class (map to 429).
            ValueError: ``priority`` is not one of :data:`wire.PRIORITIES`.
        """
        if priority not in wire.PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; expected one of "
                f"{list(wire.PRIORITIES)}"
            )
        if self._draining:
            self.metrics.counter("serve.requests_rejected_draining").inc()
            if self.log.enabled_for(obs_log.WARNING):
                self.log.warning(
                    "request.shed", priority=priority, reason="draining"
                )
            raise ShuttingDown("the service is draining")
        if (
            priority == "batch"
            and self._queue.qsize() >= self.config.batch_queue_limit
        ):
            self.metrics.counter("serve.requests_shed_batch").inc()
            if self.log.enabled_for(obs_log.WARNING):
                self.log.warning(
                    "request.shed", priority=priority, reason="batch_queue_limit"
                )
            raise QueueFull(self.config.retry_after_s)
        future = asyncio.get_running_loop().create_future()
        pending = _Pending(
            spec=spec,
            future=future,
            priority=priority,
            trace_id=trace_id,
            trace_start=self.runtime.now() if self.runtime.enabled else 0.0,
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.metrics.counter("serve.requests_rejected_full").inc()
            if self.log.enabled_for(obs_log.WARNING):
                self.log.warning(
                    "request.shed", priority=priority, reason="queue_full"
                )
            raise QueueFull(self.config.retry_after_s) from None
        self.metrics.counter("serve.requests_admitted").inc()
        self.metrics.counter(f"serve.requests_admitted.{priority}").inc()
        self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
        if self.log.enabled_for(obs_log.DEBUG):
            self.log.debug(
                "request.admitted",
                priority=priority,
                queue_depth=self._queue.qsize(),
            )
        return future

    # -- batching ----------------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Lease a session, collect a batch, dispatch; repeat until drained.

        The session is leased *before* the first request is pulled so
        the bounded queue is the only place requests wait — the
        admission limit stays exact under saturation.
        """
        while True:
            session = await self._session_pool.get()
            first = await self._next_pending()
            if first is None:
                self._session_pool.put_nowait(session)
                return
            batch = [first]
            deadline = asyncio.get_running_loop().time() + (
                self.config.linger_ms / 1000.0
            )
            while len(batch) < self.config.max_batch:
                if self._draining:
                    # Flush fast: take whatever is already queued.
                    try:
                        batch.append(self._queue.get_nowait())
                        continue
                    except asyncio.QueueEmpty:
                        break
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
            task = asyncio.get_running_loop().create_task(
                self._run_batch(session, batch)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _next_pending(self) -> _Pending | None:
        """The next admitted request, or ``None`` once drained dry."""
        while True:
            try:
                return self._queue.get_nowait()
            except asyncio.QueueEmpty:
                if self._draining:
                    return None
            getter = asyncio.ensure_future(self._queue.get())
            waker = asyncio.ensure_future(self._drain_wakeup.wait())
            done, _ = await asyncio.wait(
                {getter, waker}, return_when=asyncio.FIRST_COMPLETED
            )
            waker.cancel()
            if getter in done:
                return getter.result()
            getter.cancel()
            try:
                await getter
            except asyncio.CancelledError:
                pass
            else:  # pragma: no cover - raced an item in during cancellation
                return getter.result()

    async def _run_batch(
        self, session: FabricSession, batch: list[_Pending]
    ) -> None:
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch_size").observe(len(batch))
        specs = [pending.spec for pending in batch]
        loop = asyncio.get_running_loop()
        runtime = self.runtime
        batch_start = 0.0
        if runtime.enabled:
            # The linger/queue wait ends here: one span per request from
            # its admission to the moment its batch dispatches.
            batch_start = runtime.now()
            for pending in batch:
                runtime.complete(
                    "serve.queue",
                    "serve",
                    pending.trace_start,
                    batch_start,
                    trace_id=pending.trace_id,
                    args={"priority": pending.priority},
                )
        try:
            rows = await loop.run_in_executor(
                self._executor, self._evaluate_batch, session, specs
            )
        except Exception as exc:
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
        else:
            if runtime.enabled:
                batch_end = runtime.now()
                runtime.complete(
                    "serve.batch",
                    "serve",
                    batch_start,
                    batch_end,
                    args={"batch_size": len(batch)},
                )
                for pending, row in zip(batch, rows):
                    runtime.complete(
                        "serve.evaluate",
                        "serve",
                        batch_start,
                        batch_end,
                        trace_id=pending.trace_id,
                        args={
                            "fabric": pending.spec.fabric,
                            "cache": "hit" if row.from_cache else "miss",
                        },
                    )
            for pending, row in zip(batch, rows):
                if not pending.future.done():
                    pending.future.set_result(row)
                elapsed = time.monotonic() - pending.admitted_at
                self.metrics.histogram("serve.request_seconds").observe(elapsed)
                self.metrics.histogram(
                    f"serve.request_seconds.{pending.priority}"
                ).observe(elapsed)
            self.metrics.counter("serve.requests_completed").inc(len(batch))
        finally:
            self._session_pool.put_nowait(session)
            self._refresh_cache_metrics()

    # -- introspection -----------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Hit/miss view summed over every pooled session."""
        total = CacheStats()
        for session in self._sessions:
            stats = session.cache_stats()
            total.hits += stats.hits
            total.misses += stats.misses
            total.eval_seconds += stats.eval_seconds
            for fabric, counts in stats.per_backend.items():
                merged = total.per_backend.setdefault(
                    fabric, {"hits": 0, "misses": 0}
                )
                merged["hits"] += counts["hits"]
                merged["misses"] += counts["misses"]
        return total

    def _refresh_cache_metrics(self) -> None:
        stats = self.cache_stats()
        self.metrics.gauge("serve.cache_hit_ratio").set(stats.hit_rate)
        if isinstance(self._result_cache, DiskResultCache):
            disk = self._result_cache.cache_stats()
            self.metrics.gauge("serve.disk_cache_entries").set(disk["entries"])
            self.metrics.gauge("serve.disk_cache_bytes").set(disk["bytes"])
            self.metrics.gauge("serve.disk_cache_evictions").set(
                disk["evictions"]
            )

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` payload."""
        return {
            "status": "draining" if self._draining else "ok",
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "batch_queue_limit": self.config.batch_queue_limit,
            "sessions": self.config.jobs,
            "inflight_batches": len(self._inflight),
            "uptime_s": round(time.monotonic() - self.started_at, 3),
        }

    def metrics_payload(self) -> dict[str, Any]:
        """The ``/metrics`` payload."""
        self._refresh_cache_metrics()
        payload: dict[str, Any] = {
            "metrics": self.metrics.snapshot(),
            "cache": self.cache_stats().to_dict(),
        }
        if isinstance(self._result_cache, DiskResultCache):
            payload["disk_cache"] = self._result_cache.cache_stats()
        return payload

    def metrics_prometheus(self) -> str:
        """The ``/metrics?format=prometheus`` text exposition."""
        self._refresh_cache_metrics()
        return prometheus.render_exposition(self.metrics)


def _result_body(row: SpecRun) -> bytes:
    """The evaluate response body.

    Exactly the JSON the CLI prints for the same spec (``indent=2``,
    sorted keys, trailing newline) — the byte-identity the tests and the
    CI smoke job assert.
    """
    return (
        json.dumps(row.result.to_dict(), indent=2, sort_keys=True) + "\n"
    ).encode()


class ReproServer:
    """The HTTP front end over one :class:`EvaluationService`.

    Attributes:
        service: the batching core.
        port: the bound TCP port (after :meth:`start`).
    """

    def __init__(
        self,
        config: ServerConfig,
        metrics: MetricsRegistry | None = None,
        evaluate_batch: Callable[
            [FabricSession, Sequence[ScenarioSpec]], list[SpecRun]
        ] | None = None,
        log: EventLog | None = None,
        runtime: RuntimeTracer | None = None,
    ) -> None:
        self.config = config
        self.service = EvaluationService(
            config,
            metrics=metrics,
            evaluate_batch=evaluate_batch,
            log=log,
            runtime=runtime,
        )
        self._server: asyncio.Server | None = None
        self._handlers: set[asyncio.Task] = set()
        self.port: int | None = None

    async def start(self) -> None:
        """Bind the listener and start the batcher."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Graceful stop: close the listener, drain, finish responses."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.drain()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then shut down gracefully."""
        await self.start()
        await stop.wait()
        await self.shutdown()

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            try:
                request = await wire.read_request(reader)
            except wire.ProtocolError as exc:
                writer.write(
                    wire.error_response(exc.status, "protocol_error", str(exc))
                )
                await writer.drain()
                return
            if request is None:
                return
            writer.write(await self._route(request))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(self, request: wire.Request) -> bytes:
        route = request.route
        if route == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return wire.json_response(200, self.service.health())
        if route == "/metrics":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return self._metrics_response(request)
        if route == "/v1/evaluate":
            if request.method != "POST":
                return self._method_not_allowed("POST")
            return await self._evaluate(request)
        return wire.error_response(
            404, "not_found", f"no route for {request.path!r}"
        )

    def _metrics_response(self, request: wire.Request) -> bytes:
        fmt = request.query_params().get("format", "json")
        if fmt == "prometheus":
            return wire.response_bytes(
                200,
                self.service.metrics_prometheus().encode("utf-8"),
                content_type=prometheus.CONTENT_TYPE,
            )
        if fmt != "json":
            return wire.error_response(
                400,
                "bad_format",
                f"unknown metrics format {fmt!r}; expected 'json' or "
                f"'prometheus'",
            )
        return wire.json_response(200, self.service.metrics_payload())

    @staticmethod
    def _method_not_allowed(allowed: str) -> bytes:
        return wire.error_response(
            405,
            "method_not_allowed",
            f"only {allowed} is supported on this route",
            extra_headers=(("Allow", allowed),),
        )

    async def _evaluate(self, request: wire.Request) -> bytes:
        trace_id = request.headers.get(wire.TRACE_HEADER.lower())
        if trace_id is not None and not valid_trace_id(trace_id):
            # A hostile header must not inject bytes into traces/logs.
            trace_id = new_trace_id()
        runtime = self.service.runtime
        if trace_id is None and runtime.enabled:
            trace_id = new_trace_id()
        trace_headers: tuple[tuple[str, str], ...] = (
            ((wire.TRACE_HEADER, trace_id),) if trace_id else ()
        )
        if not runtime.enabled:
            return await self._evaluate_traced(request, trace_id, trace_headers)
        with runtime.span("serve.request", "serve", trace_id=trace_id):
            return await self._evaluate_traced(request, trace_id, trace_headers)

    async def _evaluate_traced(
        self,
        request: wire.Request,
        trace_id: str | None,
        trace_headers: tuple[tuple[str, str], ...],
    ) -> bytes:
        log = self.service.log
        try:
            spec, priority = parse_evaluate_request(request)
        except EvaluateRequestError as exc:
            return wire.error_response(
                exc.status, exc.code, str(exc), extra_headers=trace_headers
            )
        try:
            future = self.service.submit(
                spec, priority=priority, trace_id=trace_id
            )
        except ShuttingDown:
            return wire.error_response(
                503,
                "draining",
                "the service is shutting down",
                extra_headers=trace_headers,
            )
        except QueueFull as exc:
            return wire.error_response(
                429,
                "queue_full",
                str(exc),
                extra_headers=trace_headers
                + (("Retry-After", f"{max(1, round(exc.retry_after_s))}"),),
            )
        try:
            row: SpecRun = await asyncio.wait_for(
                future, self.config.request_timeout_s
            )
        except asyncio.TimeoutError:
            self.service.metrics.counter("serve.requests_timed_out").inc()
            if log.enabled_for(obs_log.WARNING):
                log.warning(
                    "request.timeout", deadline_s=self.config.request_timeout_s
                )
            return wire.error_response(
                504,
                "timeout",
                f"evaluation exceeded {self.config.request_timeout_s:g} s",
                extra_headers=trace_headers,
            )
        except UnsupportedOutput as exc:
            return wire.error_response(
                400, "unsupported_output", str(exc), extra_headers=trace_headers
            )
        except (KeyError, ValueError) as exc:
            return wire.error_response(
                400,
                "bad_spec",
                f"evaluation rejected the spec: {exc}",
                extra_headers=trace_headers,
            )
        except Exception as exc:  # noqa: BLE001 - the envelope must answer
            if log.enabled_for(obs_log.ERROR):
                log.error(
                    "request.failed", status=500, code="internal", message=str(exc)
                )
            return wire.error_response(
                500,
                "internal",
                f"evaluation failed: {exc}",
                extra_headers=trace_headers,
            )
        return wire.response_bytes(
            200,
            _result_body(row),
            extra_headers=(
                (wire.CACHE_HEADER, "hit" if row.from_cache else "miss"),
            )
            + trace_headers,
        )


class ServerThread:
    """A :class:`ReproServer` on a background thread (tests, benches).

    Runs its own event loop, exposes the bound port once ready, and
    drains gracefully on :meth:`stop`. Usable as a context manager::

        with ServerThread(ServerConfig(port=0)) as handle:
            client = ServeClient(port=handle.port)
    """

    def __init__(
        self,
        config: ServerConfig,
        metrics: MetricsRegistry | None = None,
        evaluate_batch: Callable[
            [FabricSession, Sequence[ScenarioSpec]], list[SpecRun]
        ] | None = None,
        log: EventLog | None = None,
        runtime: RuntimeTracer | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics
        self.log = log
        self.runtime = runtime
        self._evaluate_batch = evaluate_batch
        self.port: int | None = None
        self.server: ReproServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread did not become ready in 30 s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def stop(self) -> None:
        """Request a graceful drain and wait for the loop to finish."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=60)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced in start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.server = ReproServer(
            self.config,
            metrics=self.metrics,
            evaluate_batch=self._evaluate_batch,
            log=self.log,
            runtime=self.runtime,
        )
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self.server.port
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()


def run_server(config: ServerConfig) -> int:
    """Run the service until SIGTERM/SIGINT; the ``repro serve`` body.

    Narrates its lifecycle through the structured event log on stderr
    (one JSON object per line). The ``serve.listening`` record carries
    the bound URL in its payload, so readiness probes that grep stderr
    for ``http://host:port`` keep working; ``serve.drained`` keeps the
    ``drained cleanly`` phrase in its ``message`` for the same reason.

    Returns:
        0 after a clean drain.
    """
    name = config.trace_name or "serve"
    log = EventLog(sys.stderr, level=config.log_level, source=name)
    runtime = (
        RuntimeTracer(name) if config.trace_dir is not None
        else NULL_RUNTIME_TRACER
    )

    async def main() -> int:
        server = ReproServer(config, log=log, runtime=runtime)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await server.start()
        url = f"http://{config.host}:{server.port}"
        log.info(
            "serve.listening",
            url=url,
            message=(
                f"repro serve listening on {url} "
                f"(jobs={config.jobs}, max_batch={config.max_batch}, "
                f"linger={config.linger_ms:g} ms, "
                f"queue_limit={config.queue_limit}, "
                f"cache={'off' if config.no_cache else 'on'})"
            ),
        )
        await stop.wait()
        log.info("serve.draining")
        await server.shutdown()
        completed = int(
            server.service.metrics.counter("serve.requests_completed").value
        )
        log.info(
            "serve.drained",
            requests_completed=completed,
            message=(
                f"repro serve drained cleanly "
                f"({completed} requests completed)"
            ),
        )
        if runtime.enabled and config.trace_dir is not None:
            runtime.write(
                Path(config.trace_dir) / f"{name}-{runtime.pid}.trace.json"
            )
        return 0

    return asyncio.run(main())
