"""Counters, gauges and histograms with deterministic snapshots.

A :class:`MetricsRegistry` is a flat namespace of named metrics created
on demand (``registry.counter("session.photonic.cache_hits").inc()``),
snapshotted as a name-sorted JSON-safe dict. Three kinds cover what the
stack reports:

* :class:`Counter` — monotonically increasing totals (cache hits, flows
  completed, rebalances).
* :class:`Gauge` — last-written values (sweep stage seconds, horizon).
* :class:`Histogram` — running count/total/min/max of observations
  (per-spec evaluation seconds) plus cumulative bucket counts and
  nearest-rank p50/p95/p99 over a bounded window of recent samples.

Every mutation takes the metric's own lock, so concurrent writers (the
serve tier's executor threads hammering one registry) never lose an
increment — ``tests/test_metrics_registry.py`` holds this under
threaded load. Snapshot ordering is deterministic by construction
(sorted names, fixed per-kind field sets), so sim-derived metrics can
be golden-tested; wall-clock-derived values are deterministic in
*shape* only, never in value — keep them out of goldens.

The registry renders two ways: the JSON payload the serve tier has
always answered on ``GET /metrics``, and the Prometheus text exposition
(:mod:`repro.obs.prometheus`) behind ``?format=prometheus``.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections import deque
from typing import Any

__all__ = [
    "DEFAULT_BUCKETS",
    "PERCENTILE_WINDOW",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "nearest_rank",
]

#: Default histogram bucket upper bounds in seconds — exponential-ish
#: latency buckets spanning a sub-millisecond cache hit to a minute-long
#: cold evaluation. Cumulative counts over these render directly as
#: Prometheus ``_bucket{le="..."}`` series.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Most recent observations retained per histogram for percentile
#: estimation. Percentiles are exact (nearest-rank over every
#: observation) until a histogram exceeds the window, then cover the
#: most recent window — memory stays O(1) per metric either way.
PERCENTILE_WINDOW = 2048


def nearest_rank(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (0.0 if empty).

    The same convention as ``repro.fleet``'s TTR percentiles, so a
    ``/metrics`` p99 and a fleet-report p99 mean the same thing.
    """
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative).

        Raises:
            ValueError: on a negative increment — counters only go up;
                use a :class:`Gauge` for values that move both ways.
        """
        if amount < 0:
            raise ValueError(f"counter increments cannot be negative: {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A last-written value."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Running statistics of a stream of observations.

    Keeps count/total/min/max, cumulative counts per bucket bound, and a
    bounded window of recent samples for nearest-rank percentiles — so a
    sweep over thousands of specs still costs O(1) memory per metric.
    """

    kind = "histogram"
    __slots__ = (
        "count",
        "total",
        "min",
        "max",
        "bounds",
        "bucket_counts",
        "_window",
        "_lock",
    )

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.bounds = tuple(bounds)
        # Non-cumulative per-bucket tallies; index len(bounds) is the
        # +Inf overflow bucket. Snapshots accumulate them on the way out.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self._window: deque[float] = deque(maxlen=PERCENTILE_WINDOW)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
            self._window.append(value)

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained sample window."""
        with self._lock:
            window = sorted(self._window)
        return nearest_rank(window, fraction)

    def cumulative_buckets(self) -> tuple[tuple[float, int], ...]:
        """``(upper_bound, cumulative_count)`` pairs, ``inf`` last.

        The cumulative form is exactly what the Prometheus exposition's
        ``_bucket{le="..."}`` series wants; the final ``inf`` count
        always equals :attr:`count`.
        """
        with self._lock:
            counts = list(self.bucket_counts)
        running = 0
        rows = []
        for bound, tally in zip((*self.bounds, math.inf), counts):
            running += tally
            rows.append((bound, running))
        return tuple(rows)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            window = sorted(self._window)
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": nearest_rank(window, 0.50),
            "p95": nearest_rank(window, 0.95),
            "p99": nearest_rank(window, 0.99),
        }


class MetricsRegistry:
    """Named metrics, created on demand, snapshotted in sorted order."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            # Creation is locked so two threads racing the first use of a
            # name agree on one instance; the double-checked read keeps
            # the common path lock-free.
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind()
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {kind.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use).

        Raises:
            TypeError: when ``name`` already holds a different kind.
        """
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def names(self) -> tuple[str, ...]:
        """Registered metric names, sorted."""
        return tuple(sorted(self._metrics))

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The metric named ``name``, or ``None`` when absent."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-safe view of every metric, keyed by sorted name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}
