"""Counters, gauges and histograms with deterministic snapshots.

A :class:`MetricsRegistry` is a flat namespace of named metrics created
on demand (``registry.counter("session.photonic.cache_hits").inc()``),
snapshotted as a name-sorted JSON-safe dict. Three kinds cover what the
stack reports:

* :class:`Counter` — monotonically increasing totals (cache hits, flows
  completed, rebalances).
* :class:`Gauge` — last-written values (sweep stage seconds, horizon).
* :class:`Histogram` — running count/total/min/max of observations
  (per-spec evaluation seconds) without retaining samples.

Snapshot ordering is deterministic by construction (sorted names, fixed
per-kind field sets), so sim-derived metrics can be golden-tested;
wall-clock-derived values are deterministic in *shape* only, never in
value — keep them out of goldens.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative).

        Raises:
            ValueError: on a negative increment — counters only go up;
                use a :class:`Gauge` for values that move both ways.
        """
        if amount < 0:
            raise ValueError(f"counter increments cannot be negative: {amount}")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A last-written value."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Running statistics of a stream of observations.

    Keeps count/total/min/max rather than samples, so a sweep over
    thousands of specs costs O(1) memory per metric.
    """

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named metrics, created on demand, snapshotted in sorted order."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {kind.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use).

        Raises:
            TypeError: when ``name`` already holds a different kind.
        """
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def names(self) -> tuple[str, ...]:
        """Registered metric names, sorted."""
        return tuple(sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-safe view of every metric, keyed by sorted name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}
