"""Structured event tracing, exportable as Chrome ``trace_event`` JSON.

A :class:`Tracer` accumulates :class:`TraceEvent` records — complete
spans (``ph="X"``), instant events (``ph="i"``), counter samples
(``ph="C"``) and track-name metadata (``ph="M"``) — with timestamps in
simulation seconds, converted to the microseconds the ``trace_event``
format specifies only at export time. Load the exported file in
``chrome://tracing`` or https://ui.perfetto.dev to see the timeline.

Tracing must cost nothing when off: every emission site in the simulator
guards with ``if tracer.enabled:``, and :data:`NULL_TRACER` (a shared
:class:`_NullTracer`) reports ``enabled = False`` and ignores every
call, so an untraced run takes the exact same code path it did before
tracing existed. Instrumentation is observation-only either way — a
traced run's measured results are asserted (and CI-enforced) identical
to an untraced run's.

Determinism: events carry simulation time, not wall-clock time, and
export sorts by (metadata-first, timestamp, insertion order), so the
same scenario always serializes to the same bytes — which is what lets
``tests/golden/trace.json`` exist.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]

_US_PER_S = 1e6


def _freeze_args(args: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    if not args:
        return ()
    return tuple(sorted(args.items()))


@dataclass(frozen=True)
class TraceEvent:
    """One Chrome-trace event.

    Attributes:
        name: event label (e.g. ``"flow (0, 1, 2)"``, ``"reconfigure"``).
        cat: category (``"flow"``, ``"phase"``, ``"reconfig"``,
            ``"failure"``, ``"recovery"``, ...) — filterable in viewers.
        ph: trace-event phase: ``"X"`` complete span, ``"i"`` instant,
            ``"C"`` counter, ``"M"`` metadata.
        ts_us: start timestamp in microseconds of simulation time.
        dur_us: span duration in microseconds (``None`` for non-spans).
        pid: process track (0 — one simulated fabric per trace).
        tid: thread track (0 = network, 1..N = per-schedule tracks).
        args: extra payload as sorted ``(key, value)`` pairs (kept as a
            tuple so the event stays frozen and hashable).
    """

    name: str
    cat: str
    ph: str
    ts_us: float
    dur_us: float | None = None
    pid: int = 0
    tid: int = 0
    args: tuple[tuple[str, Any], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """The event as a ``trace_event`` JSON object."""
        data: dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts_us,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.dur_us is not None:
            data["dur"] = self.dur_us
        if self.ph == "i":
            data["s"] = "t"  # instant scope: thread
        if self.args:
            data["args"] = dict(self.args)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        return cls(
            name=data["name"],
            cat=data["cat"],
            ph=data["ph"],
            ts_us=data["ts"],
            dur_us=data.get("dur"),
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
            args=_freeze_args(data.get("args")),
        )

    @property
    def end_us(self) -> float:
        """Span end timestamp (start for instants)."""
        return self.ts_us + (self.dur_us or 0.0)


class Tracer:
    """Collects trace events; timestamps are simulation seconds.

    Attributes:
        enabled: emission guard — call sites skip event construction
            entirely when false (:data:`NULL_TRACER` is the off state).
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    # -- emission --------------------------------------------------------------

    def complete(
        self,
        name: str,
        cat: str,
        start_s: float,
        end_s: float,
        tid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a complete span covering ``[start_s, end_s]``."""
        self._events.append(
            TraceEvent(
                name=name,
                cat=cat,
                ph="X",
                ts_us=start_s * _US_PER_S,
                dur_us=(end_s - start_s) * _US_PER_S,
                tid=tid,
                args=_freeze_args(args),
            )
        )

    def instant(
        self,
        name: str,
        cat: str,
        ts_s: float,
        tid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record an instant event at ``ts_s``."""
        self._events.append(
            TraceEvent(
                name=name,
                cat=cat,
                ph="i",
                ts_us=ts_s * _US_PER_S,
                tid=tid,
                args=_freeze_args(args),
            )
        )

    def counter(
        self, name: str, cat: str, ts_s: float, value: float, tid: int = 0
    ) -> None:
        """Record a counter sample (rendered as a filled graph)."""
        self._events.append(
            TraceEvent(
                name=name,
                cat=cat,
                ph="C",
                ts_us=ts_s * _US_PER_S,
                tid=tid,
                args=(("value", value),),
            )
        )

    def thread_name(self, tid: int, name: str) -> None:
        """Label a thread track (one per schedule, tid 0 = network)."""
        self._events.append(
            TraceEvent(
                name="thread_name",
                cat="__metadata",
                ph="M",
                ts_us=0.0,
                tid=tid,
                args=(("name", name),),
            )
        )

    # -- reading ----------------------------------------------------------------

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Every recorded event, in emission order."""
        return tuple(self._events)

    def spans(self, cat: str | None = None) -> tuple[TraceEvent, ...]:
        """Complete spans, optionally filtered by category."""
        return tuple(
            e
            for e in self._events
            if e.ph == "X" and (cat is None or e.cat == cat)
        )

    def instants(self, cat: str | None = None) -> tuple[TraceEvent, ...]:
        """Instant events, optionally filtered by category."""
        return tuple(
            e
            for e in self._events
            if e.ph == "i" and (cat is None or e.cat == cat)
        )

    # -- export -----------------------------------------------------------------

    def _sorted_events(self) -> list[TraceEvent]:
        # Metadata first, then timestamp, then insertion order — a total,
        # deterministic order (Python's sort is stable, supplying the
        # insertion tiebreak).
        return sorted(
            self._events,
            key=lambda e: (0 if e.ph == "M" else 1, e.ts_us),
        )

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome/Perfetto ``trace_event`` JSON object."""
        return {
            "displayTimeUnit": "ns",
            "traceEvents": [e.to_dict() for e in self._sorted_events()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialized Chrome trace (sorted keys — byte-deterministic)."""
        return json.dumps(self.to_chrome(), indent=indent, sort_keys=True)

    def write(self, path: str | Path) -> Path:
        """Write the Chrome trace to ``path``; returns the path."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target


class _NullTracer(Tracer):
    """The off state: reports disabled and drops every event.

    Emission methods are overridden to no-ops so even an unguarded call
    site costs one method dispatch and nothing else; guarded sites
    (``if tracer.enabled:``) skip argument construction too.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def complete(self, *args: Any, **kwargs: Any) -> None:
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:
        pass

    def counter(self, *args: Any, **kwargs: Any) -> None:
        pass

    def thread_name(self, *args: Any, **kwargs: Any) -> None:
        pass


#: Shared no-op tracer: ``tracer or NULL_TRACER`` is the idiom modules use
#: to accept an optional tracer argument without branching at every site.
NULL_TRACER = _NullTracer()
