"""Structured JSONL event logging for the serving tier and simulators.

One :class:`EventLog` writes one JSON object per line — leveled,
schema-checked, sorted-key — replacing the ad-hoc ``print(...,
file=sys.stderr)`` calls that used to narrate the serving tier. A JSON
line is still a line: the readiness probes that grep a worker's stderr
for ``http://host:port`` keep working because the ``serve.listening``
event carries the URL (and a human ``message``) in its payload.

Design rules, in the same spirit as :mod:`repro.obs.tracer`:

* **Zero overhead when off.** :data:`NULL_LOG` reports ``enabled =
  False`` for every level and drops every record; hot-path call sites
  guard with ``if log.enabled_for(DEBUG):`` so an unlogged request
  constructs nothing. Per-request events (admitted, coalesced, ...) are
  DEBUG; lifecycle events (listening, worker death, drain) are INFO and
  WARNING, so a default ``info`` log stays quiet under load.
* **Schema'd events.** Every event name is declared in
  :data:`EVENT_FIELDS` with its required payload fields; emitting an
  undeclared event or omitting a required field raises immediately —
  the log's vocabulary cannot drift silently.
* **Deterministic in test mode.** Keys are always sorted and the clock
  is injectable, so a scripted sequence of events serializes to the
  exact same bytes every run — which is what lets
  ``tests/golden/obs_log.jsonl`` exist (regenerate it with
  ``python -m repro.obs.log``).
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
from typing import Any, Callable, TextIO

__all__ = [
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "LEVELS",
    "EVENT_FIELDS",
    "EventLog",
    "NULL_LOG",
    "demo_events",
]

#: Numeric severities, stdlib-logging compatible.
DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40

#: Level name -> numeric severity (accepted by :class:`EventLog`).
LEVELS = {"debug": DEBUG, "info": INFO, "warning": WARNING, "error": ERROR}

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}

#: The event vocabulary: every emittable event name mapped to the
#: payload fields it must carry. Extra fields are always allowed;
#: missing required fields (or an undeclared event name) raise
#: ``ValueError`` at the emission site.
EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    # -- service lifecycle (worker and router) --
    "serve.listening": ("url",),
    "serve.draining": (),
    "serve.drained": ("requests_completed",),
    # -- per-request flow --
    "request.admitted": ("priority",),
    "request.shed": ("priority", "reason"),
    "request.coalesced": ("role",),
    "request.failover": ("slot",),
    "request.timeout": ("deadline_s",),
    "request.failed": ("status", "code"),
    # -- worker supervision (router side) --
    "worker.spawn": ("slot", "port", "pid"),
    "worker.death": ("slot", "restarts"),
    "worker.respawn": ("slot",),
    "worker.respawn_failed": ("error",),
    # -- result cache --
    "cache.evict": ("evicted", "entries", "bytes"),
    # -- year-scale fleet simulation heartbeats --
    "fleet.progress": ("fabric", "t_days", "failures", "repairs", "available"),
    # -- multi-tenant churn simulation heartbeats --
    "tenancy.progress": (
        "fabric", "t_days", "arrivals", "running", "queued", "rejected",
    ),
}


class EventLog:
    """Leveled JSONL event writer with a schema-checked vocabulary.

    Attributes:
        level: minimum numeric severity written.
        source: optional origin tag stamped on every record
            (``"router"``, ``"w0"``, ...).
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        level: str | int = "info",
        source: str | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if isinstance(level, str):
            try:
                level = LEVELS[level]
            except KeyError:
                raise ValueError(
                    f"unknown log level {level!r}; choose from {list(LEVELS)}"
                ) from None
        self.level = int(level)
        self.source = source
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()

    # -- guards ------------------------------------------------------------------

    def enabled_for(self, level: int) -> bool:
        """Whether a record at ``level`` would be written (the hot-path
        guard — call sites skip field construction when false)."""
        return level >= self.level

    # -- emission ----------------------------------------------------------------

    def emit(self, level: int, event: str, **fields: Any) -> None:
        """Write one schema-checked record at ``level``.

        Raises:
            ValueError: for an event name outside :data:`EVENT_FIELDS`
                or a record missing one of its required fields.
        """
        required = EVENT_FIELDS.get(event)
        if required is None:
            raise ValueError(
                f"undeclared event {event!r}; declare it in "
                f"repro.obs.log.EVENT_FIELDS"
            )
        missing = [name for name in required if name not in fields]
        if missing:
            raise ValueError(f"event {event!r} missing fields {missing}")
        if not self.enabled_for(level):
            return
        record: dict[str, Any] = {
            "ts": round(self._clock(), 6),
            "level": _LEVEL_NAMES.get(level, str(level)),
            "event": event,
        }
        if self.source is not None:
            record["source"] = self.source
        record.update(fields)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    def debug(self, event: str, **fields: Any) -> None:
        self.emit(DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.emit(INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.emit(WARNING, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.emit(ERROR, event, **fields)

    def child(self, source: str) -> "EventLog":
        """A log sharing this one's stream/level/clock with a new source."""
        clone = EventLog(
            self._stream, level=self.level, source=source, clock=self._clock
        )
        clone._lock = self._lock
        return clone


class _NullLog(EventLog):
    """The off state: every level disabled, every record dropped.

    Schema validation still runs in :meth:`emit` (an undeclared event is
    a bug regardless of log level), but guarded call sites never reach
    it.
    """

    def __init__(self) -> None:
        super().__init__(io.StringIO(), level=ERROR + 10)

    def enabled_for(self, level: int) -> bool:
        return False

    def emit(self, level: int, event: str, **fields: Any) -> None:
        if EVENT_FIELDS.get(event) is None:
            raise ValueError(
                f"undeclared event {event!r}; declare it in "
                f"repro.obs.log.EVENT_FIELDS"
            )


#: Shared disabled log — the ``log or NULL_LOG`` default for optional
#: ``log`` parameters, mirroring :data:`repro.obs.tracer.NULL_TRACER`.
NULL_LOG = _NullLog()


def demo_events(log: EventLog) -> None:
    """Emit one representative record per event family.

    Drives the golden test: with an injected clock this sequence
    serializes byte-identically every run
    (``tests/golden/obs_log.jsonl``).
    """
    log.info(
        "serve.listening",
        url="http://127.0.0.1:8421",
        message="repro serve listening on http://127.0.0.1:8421",
    )
    log.debug("request.admitted", priority="interactive", queue_depth=1)
    log.debug("request.coalesced", role="follower", key="ab12cd34")
    log.warning("request.shed", priority="batch", reason="queue_full")
    log.warning("request.failover", slot=1, key="ab12cd34")
    log.warning("request.timeout", deadline_s=60.0)
    log.error("request.failed", status=502, code="no_worker")
    log.info("worker.spawn", slot=0, port=40001, pid=4242)
    log.warning("worker.death", slot=0, restarts=1)
    log.info("worker.respawn", slot=0)
    log.error("worker.respawn_failed", error="spawn timed out")
    log.info("cache.evict", evicted=3, entries=61, bytes=524288)
    log.info(
        "fleet.progress",
        fabric="photonic",
        t_days=36.5,
        failures=12,
        repairs=11,
        available=4094,
    )
    log.info(
        "tenancy.progress",
        fabric="photonic",
        t_days=3.5,
        arrivals=5286,
        running=18,
        queued=2,
        rejected=24,
    )
    log.info("serve.draining")
    log.info(
        "serve.drained",
        requests_completed=7,
        message="drained cleanly (7 requests completed)",
    )


def _main() -> int:
    """``python -m repro.obs.log``: the deterministic demo log on stdout.

    CI pipes this through ``cmp`` against ``tests/golden/obs_log.jsonl``.
    """
    ticks = iter(i / 10 for i in range(len(EVENT_FIELDS) + 1))
    log = EventLog(
        sys.stdout, level="debug", source="demo", clock=lambda: next(ticks)
    )
    demo_events(log)
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
