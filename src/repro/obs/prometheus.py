"""Prometheus text exposition (version 0.0.4) for the metrics registry.

:func:`render_exposition` turns :class:`~repro.obs.metrics.MetricsRegistry`
snapshots into the ``text/plain`` format every Prometheus-compatible
scraper ingests — the serve tier answers it on
``GET /metrics?format=prometheus`` while the JSON payload on the bare
path stays byte-identical to what it always was.

Mapping:

* counters -> ``# TYPE repro_<name> counter`` plus one sample;
* gauges -> ``gauge`` plus one sample;
* histograms -> the full Prometheus histogram family: cumulative
  ``_bucket{le="..."}`` series (``+Inf`` last), ``_sum`` and
  ``_count`` — rendered from the registry's live bucket counts, with
  the JSON-side p50/p95/p99 left to the JSON payload (Prometheus
  computes quantiles server-side from buckets).

Dotted registry names become underscore-separated metric names
(``serve.request_seconds`` -> ``repro_serve_request_seconds``); an
optional label set (e.g. ``worker="w0"`` on the router's aggregated
view) is attached to every sample. Rendering sorts by metric name, so
the exposition is deterministic for a given snapshot.

:func:`parse_exposition` is the matching stdlib-only validator: it
re-parses an exposition, checks sample-line grammar, TYPE declarations,
bucket monotonicity and ``+Inf``/``_count`` agreement — cheap enough to
run in CI against live servers (``tests/test_prometheus.py``,
``scripts/shard_smoke.py``).
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "CONTENT_TYPE",
    "render_exposition",
    "render_snapshot",
    "parse_exposition",
]

#: The Content-Type Prometheus scrapers expect for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def _metric_name(name: str, namespace: str) -> str:
    """``serve.request_seconds`` -> ``repro_serve_request_seconds``."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = f"{namespace}_{cleaned}" if namespace else cleaned
    if not _NAME_OK.fullmatch(full):  # pragma: no cover - namespace abuse
        raise ValueError(f"unrenderable metric name {name!r}")
    return full


def _fmt(value: float) -> str:
    """A float as Prometheus text: ``+Inf``/``-Inf``/``NaN`` spelled out,
    integral values without the trailing ``.0``."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - registries never store NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    pairs = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + pairs + "}"


def _bucket_label(labels: Mapping[str, str] | None, le: float) -> str:
    merged = dict(labels) if labels else {}
    merged["le"] = _fmt(le)
    # le must sort with the other labels for a stable line, but its
    # value is the bound, not a string to escape.
    pairs = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + pairs + "}"


def render_snapshot(
    snapshot: Mapping[str, Mapping[str, Any]],
    *,
    namespace: str = "repro",
    labels: Mapping[str, str] | None = None,
    declare_types: bool = True,
) -> list[str]:
    """Exposition lines for one registry *snapshot* (no trailing ``\\n``).

    Works from the JSON-safe snapshot dict rather than live metric
    objects, so the router can render worker payloads it only holds as
    JSON. Histogram snapshots carry no bucket detail, so a snapshot
    histogram renders as ``_sum``/``_count`` plus min/max/percentile
    gauges; use :func:`render_exposition` on a live registry for full
    bucket series.
    """
    lines: list[str] = []
    suffix = _label_text(labels)
    for name in sorted(snapshot):
        snap = snapshot[name]
        kind = snap.get("kind")
        metric = _metric_name(name, namespace)
        if kind in ("counter", "gauge"):
            if declare_types:
                lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric}{suffix} {_fmt(float(snap['value']))}")
        elif kind == "histogram":
            if declare_types:
                lines.append(f"# TYPE {metric} histogram")
            lines.append(
                f"{metric}_sum{suffix} {_fmt(float(snap['total']))}"
            )
            lines.append(f"{metric}_count{suffix} {_fmt(float(snap['count']))}")
            for stat in ("min", "max", "p50", "p95", "p99"):
                value = snap.get(stat)
                if value is None:
                    continue
                lines.append(f"{metric}_{stat}{suffix} {_fmt(float(value))}")
    return lines


def render_exposition(
    registry: MetricsRegistry,
    *,
    namespace: str = "repro",
    labels: Mapping[str, str] | None = None,
    extra_lines: Iterable[str] = (),
) -> str:
    """The full text exposition of a live registry.

    ``extra_lines`` (already-rendered sample lines, e.g. the router's
    per-worker aggregation) are appended after the registry's own
    families. The result always ends with a newline, as the format
    requires.
    """
    lines: list[str] = []
    suffix = _label_text(labels)
    for name in registry.names():
        metric_obj = registry.get(name)
        metric = _metric_name(name, namespace)
        if isinstance(metric_obj, Counter):
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}{suffix} {_fmt(metric_obj.value)}")
        elif isinstance(metric_obj, Gauge):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{suffix} {_fmt(metric_obj.value)}")
        elif isinstance(metric_obj, Histogram):
            lines.append(f"# TYPE {metric} histogram")
            for bound, cumulative in metric_obj.cumulative_buckets():
                lines.append(
                    f"{metric}_bucket{_bucket_label(labels, bound)} "
                    f"{_fmt(float(cumulative))}"
                )
            lines.append(f"{metric}_sum{suffix} {_fmt(metric_obj.total)}")
            lines.append(
                f"{metric}_count{suffix} {_fmt(float(metric_obj.count))}"
            )
    lines.extend(extra_lines)
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, dict[str, Any]]:
    """Parse and validate an exposition; the CI parse check.

    Returns:
        ``{metric_name: {"type": ..., "samples": [(labels, value), ...]}}``
        keyed by *family* name (bucket/sum/count samples fold into their
        histogram's family).

    Raises:
        ValueError: on any grammar violation — a malformed sample line,
            an unparsable value, a duplicate TYPE declaration, a
            histogram whose cumulative buckets decrease, miss ``+Inf``,
            or disagree with ``_count``.
    """
    families: dict[str, dict[str, Any]] = {}

    def family(name: str) -> dict[str, Any]:
        return families.setdefault(name, {"type": None, "samples": []})

    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
                _, _, name, kind = parts
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown TYPE {kind!r}"
                    )
                entry = family(name)
                if entry["type"] is not None:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {name!r}"
                    )
                entry["type"] = kind
            continue  # comments and HELP lines are free-form
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in raw_labels.split(","):
                pair_match = _LABEL_PAIR.match(pair.strip())
                if pair_match is None:
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}"
                    )
                labels[pair_match.group(1)] = pair_match.group(2)
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace(
                "-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparsable value {raw_value!r}"
            ) from None
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and family_base(families, name, suffix):
                base = name[: -len(suffix)]
                break
        family(base)["samples"].append((name, labels, value))

    _check_histograms(families)
    return families


def family_base(
    families: Mapping[str, Any], name: str, suffix: str
) -> bool:
    """Whether ``name`` minus ``suffix`` is a declared histogram family."""
    base = name[: -len(suffix)]
    entry = families.get(base)
    return entry is not None and entry["type"] == "histogram"


def _check_histograms(families: Mapping[str, dict[str, Any]]) -> None:
    for name, entry in families.items():
        if entry["type"] != "histogram":
            continue
        # Group bucket samples by their non-le label set.
        series: dict[tuple, list[tuple[float, float]]] = {}
        counts: dict[tuple, float] = {}
        for sample_name, labels, value in entry["samples"]:
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if sample_name == f"{name}_bucket":
                if "le" not in labels:
                    raise ValueError(f"{name}: bucket sample without le label")
                series.setdefault(key, []).append(
                    (float(labels["le"].replace("+Inf", "inf")), value)
                )
            elif sample_name == f"{name}_count":
                counts[key] = value
        if not series:
            raise ValueError(f"{name}: histogram with no bucket samples")
        for key, buckets in series.items():
            buckets.sort()
            cumulative = [count for _, count in buckets]
            if cumulative != sorted(cumulative):
                raise ValueError(
                    f"{name}{dict(key)}: bucket counts not cumulative"
                )
            if not math.isinf(buckets[-1][0]):
                raise ValueError(f"{name}{dict(key)}: no +Inf bucket")
            declared = counts.get(key)
            if declared is not None and declared != buckets[-1][1]:
                raise ValueError(
                    f"{name}{dict(key)}: +Inf bucket {buckets[-1][1]} != "
                    f"_count {declared}"
                )
