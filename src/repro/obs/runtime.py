"""Wall-clock request tracing across the sharded serving tier.

:class:`~repro.obs.tracer.Tracer` timestamps events in *simulation*
seconds, which is what makes sim traces golden-testable — but it cannot
answer "where did this request's 40 ms go?" across the router, a worker,
its batcher and the session underneath. :class:`RuntimeTracer` is the
wall-clock companion: every span carries real time and a ``trace_id``
minted at the router (or accepted from the ``X-Repro-Trace-Id`` request
header) and propagated to workers over the same header, so the spans one
request leaves in *different processes* stitch into one timeline.

The export format is the same deterministic Chrome/Perfetto
``trace_event`` JSON the sim tracer writes — each process exports its
own file keyed by its pid (a separate process track in Perfetto), and
:func:`merge_traces` (surfaced as ``repro obs merge``) concatenates any
number of per-process files into one timeline, sorted by the sim
tracer's total order.

The off switch mirrors :data:`~repro.obs.tracer.NULL_TRACER`: call
sites guard with ``if runtime.enabled:`` against the shared
:data:`NULL_RUNTIME_TRACER`, so an untraced request constructs no
events, takes no lock and allocates nothing — the serving tier's
byte-identity and overhead contracts hold exactly as before.

Determinism: wall-clock timestamps are obviously not golden-testable,
but the *clock is injectable* — tests drive a fake clock and assert the
exported bytes, and span structure (names, categories, args, ordering
rules) is deterministic either way.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from .tracer import TraceEvent, _freeze_args

__all__ = [
    "TRACE_ID_PATTERN",
    "new_trace_id",
    "valid_trace_id",
    "RuntimeTracer",
    "NULL_RUNTIME_TRACER",
    "merge_traces",
    "write_merged",
]

_US_PER_S = 1e6

#: What the tier accepts as an ``X-Repro-Trace-Id`` value. Anything else
#: is ignored and replaced with a freshly minted id, so a hostile header
#: cannot inject bytes into trace files or logs.
TRACE_ID_PATTERN = re.compile(r"[A-Za-z0-9_.\-]{1,64}")


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (uuid4)."""
    return uuid.uuid4().hex


def valid_trace_id(value: str | None) -> bool:
    """Whether ``value`` is usable as a trace id as-is."""
    return value is not None and TRACE_ID_PATTERN.fullmatch(value) is not None


class RuntimeTracer:
    """Collects wall-clock spans; one instance per process.

    Attributes:
        enabled: emission guard, same idiom as the sim tracer — call
            sites skip span construction entirely when false.
        name: the process track label (``"router"``, ``"w0"``, ...)
            shown in Perfetto.
        pid: the process id stamped on every event (defaults to
            ``os.getpid()``), which is what keeps per-process files
            mergeable without track collisions.
    """

    enabled: bool = True

    def __init__(
        self,
        name: str = "serve",
        *,
        clock: Callable[[], float] | None = None,
        pid: int | None = None,
    ) -> None:
        self.name = name
        self.pid = os.getpid() if pid is None else pid
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = [
            TraceEvent(
                name="process_name",
                cat="__metadata",
                ph="M",
                ts_us=0.0,
                pid=self.pid,
                args=(("name", name),),
            )
        ]

    # -- emission ----------------------------------------------------------------

    def now(self) -> float:
        """The tracer's wall-clock reading in seconds."""
        return self._clock()

    def complete(
        self,
        name: str,
        cat: str,
        start_s: float,
        end_s: float,
        *,
        trace_id: str | None = None,
        tid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a wall-clock span covering ``[start_s, end_s]``."""
        payload = dict(args) if args else {}
        if trace_id is not None:
            payload["trace_id"] = trace_id
        event = TraceEvent(
            name=name,
            cat=cat,
            ph="X",
            ts_us=start_s * _US_PER_S,
            dur_us=max(0.0, end_s - start_s) * _US_PER_S,
            pid=self.pid,
            tid=tid,
            args=_freeze_args(payload),
        )
        with self._lock:
            self._events.append(event)

    def instant(
        self,
        name: str,
        cat: str,
        *,
        trace_id: str | None = None,
        tid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record an instant event at the current clock reading."""
        payload = dict(args) if args else {}
        if trace_id is not None:
            payload["trace_id"] = trace_id
        event = TraceEvent(
            name=name,
            cat=cat,
            ph="i",
            ts_us=self._clock() * _US_PER_S,
            pid=self.pid,
            tid=tid,
            args=_freeze_args(payload),
        )
        with self._lock:
            self._events.append(event)

    @contextmanager
    def span(
        self,
        name: str,
        cat: str,
        *,
        trace_id: str | None = None,
        tid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Record the enclosed block as a complete span.

        Yields a mutable dict merged into the span's args at exit, so
        the block can attach results discovered mid-flight (cache
        provenance, status codes, kernel timings)::

            with runtime.span("evaluate", "serve", trace_id=tid) as extra:
                row = evaluate(spec)
                extra["cache"] = "hit" if row.from_cache else "miss"
        """
        extra: dict[str, Any] = dict(args) if args else {}
        start = self._clock()
        try:
            yield extra
        finally:
            self.complete(
                name,
                cat,
                start,
                self._clock(),
                trace_id=trace_id,
                tid=tid,
                args=extra,
            )

    def thread_name(self, tid: int, name: str) -> None:
        """Label a thread track of this process."""
        event = TraceEvent(
            name="thread_name",
            cat="__metadata",
            ph="M",
            ts_us=0.0,
            pid=self.pid,
            tid=tid,
            args=(("name", name),),
        )
        with self._lock:
            self._events.append(event)

    # -- reading -----------------------------------------------------------------

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Every recorded event, in emission order."""
        with self._lock:
            return tuple(self._events)

    def spans(self, cat: str | None = None) -> tuple[TraceEvent, ...]:
        """Complete spans, optionally filtered by category."""
        return tuple(
            e
            for e in self.events
            if e.ph == "X" and (cat is None or e.cat == cat)
        )

    # -- export ------------------------------------------------------------------

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome/Perfetto ``trace_event`` JSON object."""
        return {
            "displayTimeUnit": "ms",
            "traceEvents": [e.to_dict() for e in _sorted(self.events)],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialized Chrome trace (sorted keys)."""
        return json.dumps(self.to_chrome(), indent=indent, sort_keys=True)

    def write(self, path: str | Path) -> Path:
        """Write the Chrome trace to ``path``; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target


class _NullRuntimeTracer(RuntimeTracer):
    """The off state: reports disabled and drops every event."""

    enabled = False

    def __init__(self) -> None:
        super().__init__("off", pid=0)
        self._events = []

    def complete(self, *args: Any, **kwargs: Any) -> None:
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:
        pass

    @contextmanager
    def span(self, *args: Any, **kwargs: Any) -> Iterator[dict[str, Any]]:
        yield {}

    def thread_name(self, *args: Any, **kwargs: Any) -> None:
        pass


#: Shared no-op runtime tracer — the ``runtime or NULL_RUNTIME_TRACER``
#: default for optional tracer parameters.
NULL_RUNTIME_TRACER = _NullRuntimeTracer()


def _sorted(events: Iterable[TraceEvent]) -> list[TraceEvent]:
    # The sim tracer's total order, extended with (pid, tid, name) so a
    # merge of several files is deterministic regardless of input order.
    return sorted(
        events,
        key=lambda e: (
            0 if e.ph == "M" else 1,
            e.ts_us,
            e.pid,
            e.tid,
            e.name,
        ),
    )


def merge_traces(paths: Iterable[str | Path]) -> dict[str, Any]:
    """Merge per-process ``trace_event`` JSON files into one timeline.

    Every input keeps its own pid track, so a router file plus its
    worker files render side by side in Perfetto with request spans
    correlated by their ``trace_id`` args — the ``repro obs merge``
    subcommand body.

    Raises:
        ValueError: when no input file contributes any events, or an
            input is not a ``trace_event`` JSON object.
    """
    events: list[TraceEvent] = []
    for path in paths:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "traceEvents" not in data:
            raise ValueError(
                f"{path}: not a trace_event JSON object (no traceEvents)"
            )
        for raw in data["traceEvents"]:
            events.append(TraceEvent.from_dict(raw))
    if not events:
        raise ValueError("no events in any input trace")
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [e.to_dict() for e in _sorted(events)],
    }


def write_merged(
    paths: Iterable[str | Path], out: str | Path
) -> tuple[Path, int]:
    """Merge ``paths`` into ``out``; returns ``(path, event count)``."""
    merged = merge_traces(paths)
    target = Path(out)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target, len(merged["traceEvents"])
