"""Observability: structured event tracing and metrics.

The paper's headline claims are *timeline* claims — 3.7 us MZI
reconfiguration windows, congestion-free failure recovery, bandwidth
steered into the active torus dimension — and this package is where the
stack records them as data rather than prose:

* :class:`Tracer` collects structured spans and instant events from the
  simulator (flow start/finish, rate rebalances, reconfiguration and
  alpha windows, schedule phase boundaries) and from the fabric backends
  (failure injection, repair circuits, rack migration), exportable as
  Chrome/Perfetto ``trace_event`` JSON. :data:`NULL_TRACER` is the
  zero-overhead off switch: call sites guard emission behind
  ``tracer.enabled``, so an untraced run does no extra work and its
  results stay byte-identical (CI enforces this against the goldens).
* :class:`MetricsRegistry` holds counters, gauges and histograms with a
  deterministic, name-sorted snapshot — threaded through
  :class:`~repro.api.session.FabricSession` (per-backend memoization and
  evaluation timing) and :func:`~repro.api.batch.run_many` (per-stage
  and per-worker sweep statistics).

Both surfaces reach the experiment API as opt-in ``trace``/``metrics``
result sections and the CLI as ``repro trace`` and ``--metrics``.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "TraceEvent",
    "Tracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
