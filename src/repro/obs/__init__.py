"""Observability: structured event tracing and metrics.

The paper's headline claims are *timeline* claims — 3.7 us MZI
reconfiguration windows, congestion-free failure recovery, bandwidth
steered into the active torus dimension — and this package is where the
stack records them as data rather than prose:

* :class:`Tracer` collects structured spans and instant events from the
  simulator (flow start/finish, rate rebalances, reconfiguration and
  alpha windows, schedule phase boundaries) and from the fabric backends
  (failure injection, repair circuits, rack migration), exportable as
  Chrome/Perfetto ``trace_event`` JSON. :data:`NULL_TRACER` is the
  zero-overhead off switch: call sites guard emission behind
  ``tracer.enabled``, so an untraced run does no extra work and its
  results stay byte-identical (CI enforces this against the goldens).
* :class:`MetricsRegistry` holds counters, gauges and histograms with a
  deterministic, name-sorted snapshot — threaded through
  :class:`~repro.api.session.FabricSession` (per-backend memoization and
  evaluation timing) and :func:`~repro.api.batch.run_many` (per-stage
  and per-worker sweep statistics).

Both surfaces reach the experiment API as opt-in ``trace``/``metrics``
result sections and the CLI as ``repro trace`` and ``--metrics``.

The *runtime* half of the package observes the serving tier in wall
clock rather than simulation time:

* :class:`RuntimeTracer` (:mod:`repro.obs.runtime`) emits wall-clock
  spans — admission wait, batch linger, router→worker proxy hops,
  session evaluation, cache probes — keyed by an ``X-Repro-Trace-Id``
  propagated across processes, with per-process trace files merged into
  one Perfetto timeline by :func:`merge_traces` / ``repro obs merge``.
* :class:`EventLog` (:mod:`repro.obs.log`) is the structured JSONL
  event log the serve tier narrates itself through (request
  admitted/shed/coalesced/failed-over, worker spawn/death/respawn,
  cache evictions, fleet heartbeats) — leveled, schema-checked, and
  byte-deterministic under an injected clock.
* :mod:`repro.obs.prometheus` renders any registry as the Prometheus
  text exposition (``GET /metrics?format=prometheus``) and re-parses it
  for the CI validity check.
"""

from .log import EVENT_FIELDS, NULL_LOG, EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .prometheus import parse_exposition, render_exposition
from .runtime import (
    NULL_RUNTIME_TRACER,
    RuntimeTracer,
    merge_traces,
    new_trace_id,
)
from .tracer import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "TraceEvent",
    "Tracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RuntimeTracer",
    "NULL_RUNTIME_TRACER",
    "merge_traces",
    "new_trace_id",
    "EventLog",
    "NULL_LOG",
    "EVENT_FIELDS",
    "render_exposition",
    "parse_exposition",
]
