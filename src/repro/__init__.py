"""repro — reproduction of "A case for server-scale photonic connectivity".

A simulator and analysis library for the HotNets '24 paper by Vijaya
Kumar, Devraj, Bunandar and Singh: the LIGHTPATH server-scale photonic
interconnect (``repro.core``), its physical layer (``repro.phy``), the
TPUv4-style cluster substrate it is evaluated against (``repro.topology``),
collective-communication cost models and schedules (``repro.collectives``),
a discrete-event fluid-flow simulator (``repro.sim``), and failure /
blast-radius analysis (``repro.failures``). ``repro.analysis`` formats the
paper's tables and figures.

The experiment API (``repro.api``) is the single entry point tying the
layers together: a frozen :class:`~repro.api.ScenarioSpec` is evaluated by
a pluggable fabric backend through a memoizing
:class:`~repro.api.FabricSession`, returning a typed
:class:`~repro.api.RunResult`.

Quickstart::

    from repro.api import ScenarioSpec, figure5b_slices, run

    result = run(ScenarioSpec(
        slices=figure5b_slices(), outputs=("utilization",),
    ))
    for row in result.utilization:
        print(row.name, f"electrical {row.electrical_fraction:.0%}",
              f"optical {row.optical_fraction:.0%}")
"""

from . import analysis, api, collectives, core, failures, phy, sim, topology

__version__ = "0.1.0"

__all__ = [
    "analysis",
    "api",
    "collectives",
    "core",
    "failures",
    "phy",
    "sim",
    "topology",
    "__version__",
]
