"""repro — reproduction of "A case for server-scale photonic connectivity".

A simulator and analysis library for the HotNets '24 paper by Vijaya
Kumar, Devraj, Bunandar and Singh: the LIGHTPATH server-scale photonic
interconnect (``repro.core``), its physical layer (``repro.phy``), the
TPUv4-style cluster substrate it is evaluated against (``repro.topology``),
collective-communication cost models and schedules (``repro.collectives``),
a discrete-event fluid-flow simulator (``repro.sim``), and failure /
blast-radius analysis (``repro.failures``). ``repro.analysis`` formats the
paper's tables and figures.

Quickstart::

    from repro.analysis import figure5b_layout, rack_utilization

    allocator = figure5b_layout()
    for row in rack_utilization(allocator):
        print(row.name, f"electrical {row.electrical_fraction:.0%}",
              f"optical {row.optical_fraction:.0%}")
"""

from . import analysis, collectives, core, failures, phy, sim, topology

__version__ = "0.1.0"

__all__ = [
    "analysis",
    "collectives",
    "core",
    "failures",
    "phy",
    "sim",
    "topology",
    "__version__",
]
