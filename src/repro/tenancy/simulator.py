"""Event-driven multi-tenant scheduling simulator (a week of churn).

The paper's provisioning argument (Section 4.1) is a static snapshot:
one slice, one placement, one stranding number. This module runs the
dynamic extension — days of tenant jobs arriving, queueing, running and
departing over a multi-rack cluster — on the existing
:class:`~repro.sim.engine.EventEngine`. A seeded workload
(:mod:`repro.tenancy.workload`) drives a pluggable placement policy
(:mod:`repro.tenancy.policies`) over live :class:`~repro.tenancy.cluster.
ClusterState`; the fabric choice decides what a placement *costs*:

* **electrical** — only contiguous boxes are placeable, and a sub-rack
  box strands the bandwidth of every ring it does not span
  (``Slice.electrical_utilization``).
* **photonic** — the same boxes ring fully once wavelength steering
  closes their broken rings, and when no box fits the slice can be
  assembled from scattered free chips (each chip consuming one of the
  rack's steering circuits).

Jobs that cannot place queue per priority class (production drains
first) and are rejected after ``max_queue_wait_s``. Every statistic
derives from simulation state, never wall clock, so runs are
deterministic per seed and golden-testable.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, replace

from ..obs.log import INFO as _INFO, NULL_LOG, EventLog
from ..obs.tracer import NULL_TRACER, Tracer
from ..sim.engine import EventEngine, SimulationError
from .cluster import ClusterState
from .policies import (
    CATALOG_SHAPES,
    PlacementPolicy,
    SteerOnArrivalPolicy,
    make_placement_policy,
)
from .workload import PRIORITIES, TenantJob, generate_jobs

__all__ = [
    "TenancyConfig",
    "TenancyStats",
    "TenancySimulator",
    "simulate_tenancy",
    "set_progress_log",
    "FABRICS",
]

#: Fabrics the simulator models (mirrors :data:`repro.fleet.FABRICS`).
FABRICS = ("electrical", "photonic")

#: Seconds per day.
DAY_S = 86400.0


@dataclass(frozen=True)
class TenancyConfig:
    """Cluster geometry and workload of one tenancy run.

    Defaults model a 4-rack pod of 4x4x4 torus cubes (256 chips) under a
    week of Poisson churn at ~70% offered load — about 10,500 arrivals,
    enough pressure that placement quality shows up in the queue.

    Attributes:
        rack_shape: extent of each rack torus.
        racks: racks in the cluster.
        horizon_s: simulated time span.
        arrivals_per_day: mean job arrival rate.
        profile: arrival profile (:data:`repro.tenancy.workload.PROFILES`).
        seed: base RNG seed of the workload generator.
        mean_duration_s: mean job run time.
        max_queue_wait_s: queueing patience; a job unplaced this long
            after arrival is rejected.
        steer_circuits: wavelength circuits per rack for steering.
        series_points: buckets in the occupancy/fragmentation series.
    """

    rack_shape: tuple[int, ...] = (4, 4, 4)
    racks: int = 4
    horizon_s: float = 7 * DAY_S
    arrivals_per_day: float = 1500.0
    profile: str = "poisson"
    seed: int = 0
    mean_duration_s: float = 1200.0
    max_queue_wait_s: float = 3600.0
    steer_circuits: int = 64
    series_points: int = 24

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "rack_shape", tuple(int(s) for s in self.rack_shape)
        )
        if len(self.rack_shape) < 1 or any(s < 1 for s in self.rack_shape):
            raise ValueError("rack_shape extents must be positive")
        if self.racks < 1:
            raise ValueError("the cluster needs at least one rack")
        if self.horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if self.arrivals_per_day <= 0:
            raise ValueError("arrivals_per_day must be positive")
        if self.seed < 0:
            raise ValueError("seed cannot be negative")
        if self.max_queue_wait_s <= 0:
            raise ValueError("max_queue_wait_s must be positive")
        if self.steer_circuits < 0:
            raise ValueError("steer_circuits cannot be negative")
        if self.series_points < 1:
            raise ValueError("the series needs at least one bucket")
        # mean_duration_s validates in generate_jobs (shared floor).

    @property
    def total_chips(self) -> int:
        """Chips in the whole cluster."""
        chips = 1
        for ext in self.rack_shape:
            chips *= ext
        return chips * self.racks


@dataclass(frozen=True)
class TenancyStats:
    """Everything one tenancy simulation measured.

    Attributes:
        fabric: ``"electrical"`` or ``"photonic"``.
        policy: placement policy name.
        steering: whether wavelength steering was available.
        total_chips: cluster size.
        horizon_s: simulated span.
        seed: workload seed.
        profile: arrival profile.
        arrivals: jobs submitted.
        placed: jobs that got a slice (immediately or from the queue).
        steered_placements: placements assembled from scattered chips.
        rejected: jobs that timed out in the queue.
        completed: jobs that ran to completion inside the horizon.
        running_at_horizon / queued_at_horizon: jobs still in flight.
        defrag_moves: survivor relocations the policy performed.
        events_processed: engine events executed.
        mean_occupancy: time-averaged fraction of chips allocated.
        queue_delay_mean_s: mean placement delay over placed jobs
            (immediate placements count as zero).
        queue_delay_p50_s / p90 / p99 / max_s: delay percentiles,
            nearest-rank over placed jobs.
        rejection_rate: rejected / arrivals.
        stranded_chip_seconds: integral of ``chips x (1 - utilization)``
            over live allocations — bandwidth-capacity the fabric could
            not deliver to the tenants holding it.
        stranded_fraction: stranded share of occupied chip-seconds.
        circuits_peak: most wavelength circuits simultaneously lit.
        series: ``(start_s, end_s, mean_occupied_chips,
            largest_allocatable_chips, free_chips)`` buckets; the last
            two sample fragmentation at each bucket's end.
    """

    fabric: str
    policy: str
    steering: bool
    total_chips: int
    horizon_s: float
    seed: int
    profile: str
    arrivals: int
    placed: int
    steered_placements: int
    rejected: int
    completed: int
    running_at_horizon: int
    queued_at_horizon: int
    defrag_moves: int
    events_processed: int
    mean_occupancy: float
    queue_delay_mean_s: float
    queue_delay_p50_s: float
    queue_delay_p90_s: float
    queue_delay_p99_s: float
    queue_delay_max_s: float
    rejection_rate: float
    stranded_chip_seconds: float
    stranded_fraction: float
    circuits_peak: int
    series: tuple[tuple[float, float, float, int, int], ...]


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class TenancySimulator:
    """One fabric's scheduling dynamics over the horizon.

    Build one simulator (and one fresh policy) per run; :meth:`run`
    consumes the instance.
    """

    def __init__(
        self,
        config: TenancyConfig,
        fabric: str,
        policy: PlacementPolicy | None = None,
        log: EventLog | None = None,
        tracer: Tracer | None = None,
        heartbeats: int = 10,
    ):
        if fabric not in FABRICS:
            raise ValueError(f"unknown fabric {fabric!r}; choose from {FABRICS}")
        if heartbeats < 1:
            raise ValueError(f"heartbeats must be positive, got {heartbeats}")
        self.config = config
        self.fabric = fabric
        self.policy = (
            policy if policy is not None else make_placement_policy("first-fit")
        )
        if self.policy.requires_steering and fabric == "electrical":
            raise ValueError(
                f"policy {self.policy.name!r} needs wavelength steering; "
                "the electrical fabric has none"
            )
        self.log = log if log is not None else NULL_LOG
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.heartbeats = heartbeats
        self._heartbeats_fired = 0
        self._engine = EventEngine()
        self.cluster = ClusterState(
            rack_shape=config.rack_shape,
            racks=config.racks,
            steer_circuits=config.steer_circuits,
        )
        self.jobs = generate_jobs(
            horizon_s=config.horizon_s,
            arrivals_per_day=config.arrivals_per_day,
            profile=config.profile,
            seed=config.seed,
            mean_duration_s=config.mean_duration_s,
        )
        # Priority queues: production drains first, each FIFO with
        # head-of-line stop. Entries are job names; the waiting dict is
        # the source of truth (timeouts lazy-delete from the deques).
        self._queues: dict[str, deque[str]] = {p: deque() for p in PRIORITIES}
        self._waiting: dict[str, tuple[TenantJob, object]] = {}
        self._placed_at: dict[str, float] = {}
        # Occupancy/stranding accounting, integrated before each change.
        self._last_t = 0.0
        self._occupied_integral = 0.0
        self._stranded_integral = 0.0
        self._transitions: list[tuple[float, int]] = [(0.0, 0)]
        self._frag_samples: list[tuple[int, int]] = []
        self._arrivals = 0
        self._placed = 0
        self._steered = 0
        self._rejected = 0
        self._completed = 0
        self._defrag_moves = 0
        self._circuits_peak = 0
        self._delays: list[float] = []
        self._ran = False

    # -- accounting ---------------------------------------------------------------

    def _account(self) -> None:
        """Integrate occupancy and stranding up to the current time."""
        now = self._engine.now_s
        dt = now - self._last_t
        if dt > 0:
            self._occupied_integral += self.cluster.occupied_chips() * dt
            self._stranded_integral += (
                self.cluster.stranded_fraction_rate(self.fabric) * dt
            )
            self._last_t = now

    def _record(self) -> None:
        """Snapshot occupied capacity after a state change."""
        occupied = self.cluster.occupied_chips()
        if not 0 <= occupied <= self.config.total_chips:
            raise SimulationError(
                f"occupied chips {occupied} outside "
                f"[0, {self.config.total_chips}] at t={self._engine.now_s}"
            )
        self._transitions.append((self._engine.now_s, occupied))

    def _note_circuits(self) -> None:
        lit = sum(
            self.cluster.circuits_used(r) for r in range(self.config.racks)
        )
        if lit > self._circuits_peak:
            self._circuits_peak = lit

    def _heartbeat(self) -> None:
        """Emit one ``tenancy.progress`` record at the current sim time."""
        self._heartbeats_fired += 1
        self.log.info(
            "tenancy.progress",
            fabric=self.fabric,
            t_days=round(self._engine.now_s / DAY_S, 3),
            arrivals=self._arrivals,
            running=len(self.cluster.allocations),
            queued=len(self._waiting),
            rejected=self._rejected,
        )

    # -- job lifecycle ------------------------------------------------------------

    def _try_place(self, job: TenantJob) -> bool:
        allocation = self.policy.place(self.cluster, job.name, job.shape)
        if allocation is None:
            return False
        now = self._engine.now_s
        self._placed += 1
        if not allocation.contiguous:
            self._steered += 1
        self._note_circuits()
        self._placed_at[job.name] = now
        delay = now - job.arrival_s
        self._delays.append(delay)
        if self.tracer.enabled and delay > 0:
            self.tracer.complete(
                job.name,
                "tenancy.queue",
                job.arrival_s,
                now,
                args={"priority": job.priority},
            )
        self._engine.schedule_after(job.duration_s, lambda: self._depart(job))
        self._record()
        return True

    def _arrive(self, job: TenantJob) -> None:
        self._account()
        self._arrivals += 1
        if self._try_place(job):
            return
        timeout = self._engine.schedule_after(
            self.config.max_queue_wait_s, lambda: self._timeout(job)
        )
        self._waiting[job.name] = (job, timeout)
        self._queues[job.priority].append(job.name)

    def _timeout(self, job: TenantJob) -> None:
        if job.name not in self._waiting:  # pragma: no cover - defensive
            return
        del self._waiting[job.name]
        self._rejected += 1
        if self.tracer.enabled:
            self.tracer.instant(
                job.name,
                "tenancy.reject",
                self._engine.now_s,
                args={"shape": "x".join(map(str, job.shape))},
            )

    def _depart(self, job: TenantJob) -> None:
        self._account()
        allocation = self.cluster.release(job.name)
        self._completed += 1
        self._record()
        if self.tracer.enabled:
            self.tracer.complete(
                job.name,
                "tenancy.job",
                self._placed_at[job.name],
                self._engine.now_s,
                args={
                    "shape": "x".join(map(str, job.shape)),
                    "chips": job.chips,
                    "priority": job.priority,
                    "steered": not allocation.contiguous,
                },
            )
        del self._placed_at[job.name]
        self._defrag_moves += self.policy.on_departure(
            self.cluster, allocation.rack
        )
        self._drain()

    def _drain(self) -> None:
        """Place queued jobs, production first, head-of-line stop."""
        for priority in PRIORITIES:
            queue = self._queues[priority]
            while queue:
                name = queue[0]
                entry = self._waiting.get(name)
                if entry is None:  # timed out already
                    queue.popleft()
                    continue
                job, timeout = entry
                if not self._try_place(job):
                    break
                queue.popleft()
                timeout.cancel()
                del self._waiting[name]

    # -- run ---------------------------------------------------------------------

    def _sample_fragmentation(self) -> None:
        """Series-edge probe: contiguous vs total headroom, plus the
        cluster-wide consistency invariant."""
        self._frag_samples.append(
            (
                self.cluster.largest_allocatable(CATALOG_SHAPES),
                self.cluster.total_free(),
            )
        )
        self.cluster.check_consistent()

    def _series(self) -> tuple[tuple[float, float, float, int, int], ...]:
        """Time-weighted mean occupied chips per fixed bucket, joined
        with the fragmentation probes taken at each bucket's end."""
        cfg = self.config
        width = cfg.horizon_s / cfg.series_points
        integrals = [0.0] * cfg.series_points
        for i, (t0, occupied) in enumerate(self._transitions):
            t1 = (
                self._transitions[i + 1][0]
                if i + 1 < len(self._transitions)
                else cfg.horizon_s
            )
            if t1 <= t0:
                continue
            bucket = min(int(t0 // width), cfg.series_points - 1)
            while t0 < t1 and bucket < cfg.series_points:
                edge = min(t1, (bucket + 1) * width)
                integrals[bucket] += occupied * (edge - t0)
                t0 = edge
                bucket += 1
        return tuple(
            (
                i * width,
                (i + 1) * width,
                integrals[i] / width,
                self._frag_samples[i][0],
                self._frag_samples[i][1],
            )
            for i in range(cfg.series_points)
        )

    def run(self) -> TenancyStats:
        """Simulate the horizon and return the measured statistics.

        Raises:
            SimulationError: on an occupancy invariant violation — a
                simulator bug, not a workload property.
        """
        if self._ran:
            raise SimulationError("a TenancySimulator instance runs once")
        self._ran = True
        cfg = self.config
        for job in self.jobs:
            self._engine.schedule_at(
                job.arrival_s, lambda job=job: self._arrive(job)
            )
        width = cfg.horizon_s / cfg.series_points
        for i in range(cfg.series_points):
            self._engine.schedule_at(
                (i + 1) * width, self._sample_fragmentation
            )
        if self.log.enabled_for(_INFO):
            # Heartbeats ride the sim-time queue (deterministic
            # interleaving with the dynamics they report); they only
            # *read* state, and their count is subtracted below so
            # TenancyStats stays byte-identical with logging on or off.
            for k in range(1, self.heartbeats + 1):
                self._engine.schedule_at(
                    k * cfg.horizon_s / self.heartbeats, self._heartbeat
                )
        self._engine.run(until_s=cfg.horizon_s)
        self._account()
        self.cluster.check_consistent()
        delays = sorted(self._delays)
        occupied_cs = self._occupied_integral
        return TenancyStats(
            fabric=self.fabric,
            policy=self.policy.name,
            steering=self.policy.requires_steering,
            total_chips=cfg.total_chips,
            horizon_s=cfg.horizon_s,
            seed=cfg.seed,
            profile=cfg.profile,
            arrivals=self._arrivals,
            placed=self._placed,
            steered_placements=self._steered,
            rejected=self._rejected,
            completed=self._completed,
            running_at_horizon=len(self.cluster.allocations),
            queued_at_horizon=len(self._waiting),
            defrag_moves=self._defrag_moves,
            events_processed=self._engine.processed - self._heartbeats_fired,
            mean_occupancy=occupied_cs / (cfg.total_chips * cfg.horizon_s),
            queue_delay_mean_s=(
                sum(delays) / len(delays) if delays else 0.0
            ),
            queue_delay_p50_s=_percentile(delays, 0.50),
            queue_delay_p90_s=_percentile(delays, 0.90),
            queue_delay_p99_s=_percentile(delays, 0.99),
            queue_delay_max_s=delays[-1] if delays else 0.0,
            rejection_rate=(
                self._rejected / self._arrivals if self._arrivals else 0.0
            ),
            stranded_chip_seconds=self._stranded_integral,
            stranded_fraction=(
                self._stranded_integral / occupied_cs if occupied_cs else 0.0
            ),
            circuits_peak=self._circuits_peak,
            series=self._series(),
        )


_PROGRESS_LOG: EventLog = NULL_LOG


def set_progress_log(log: EventLog | None) -> None:
    """Install a process-wide heartbeat log for runs whose call path
    cannot thread ``log`` through (``repro tenancy --progress`` goes
    through the spec/backend machinery, and specs are frozen cache
    keys). ``None`` restores the silent default."""
    global _PROGRESS_LOG
    _PROGRESS_LOG = log if log is not None else NULL_LOG


def simulate_tenancy(
    config: TenancyConfig,
    fabric: str,
    policy: str = "first-fit",
    steering: bool | None = None,
    log: EventLog | None = None,
    tracer: Tracer | None = None,
) -> TenancyStats:
    """Run one fabric's tenancy simulation with a fresh policy instance.

    ``steering`` defaults to the fabric's nature — on for photonic, off
    for electrical — and wraps the base policy in
    :class:`~repro.tenancy.policies.SteerOnArrivalPolicy` when enabled
    (a no-op if ``policy`` is already ``"steer"``). Requesting steering
    on the electrical fabric raises ``ValueError``: static wiring has no
    reconfigurable reach.

    ``log`` (when given and at ``info`` or lower) receives ten
    ``tenancy.progress`` heartbeats on the *sim-time* schedule; the
    returned stats are byte-identical either way.
    """
    if fabric not in FABRICS:
        raise ValueError(f"unknown fabric {fabric!r}; choose from {FABRICS}")
    if steering is None:
        steering = fabric == "photonic"
    if steering and fabric == "electrical":
        raise ValueError("the electrical fabric cannot steer wavelengths")
    placement = make_placement_policy(policy)
    if steering and not placement.requires_steering:
        placement = SteerOnArrivalPolicy(placement)
    simulator = TenancySimulator(
        config,
        fabric,
        placement,
        log=log if log is not None else _PROGRESS_LOG,
        tracer=tracer,
    )
    stats = simulator.run()
    # Report the caller's policy choice, not the steering wrapper's name.
    if stats.policy != policy:
        stats = replace(stats, policy=policy, steering=True)
    return stats
