"""Multi-tenant dynamic scheduling over the photonic-vs-electrical torus.

Extends the paper's static provisioning snapshot (Section 4.1) into
cluster *life*: a seeded stream of tenant jobs
(:mod:`~repro.tenancy.workload`) arrives, queues, places and departs on
a multi-rack cluster (:mod:`~repro.tenancy.cluster`) under a pluggable
placement policy (:mod:`~repro.tenancy.policies`), and the simulator
(:mod:`~repro.tenancy.simulator`) measures what fabric flexibility is
worth under churn: queueing delay, rejection rate, fragmentation and
stranded bandwidth, electrical vs photonic.
"""

from .cluster import Allocation, ClusterState
from .policies import (
    PLACEMENT_POLICY_NAMES,
    BestFitPolicy,
    DefragOnDeparturePolicy,
    FirstFitPolicy,
    PlacementPolicy,
    SteerOnArrivalPolicy,
    make_placement_policy,
)
from .simulator import (
    FABRICS,
    TenancyConfig,
    TenancySimulator,
    TenancyStats,
    set_progress_log,
    simulate_tenancy,
)
from .workload import (
    JOB_CATALOG,
    MIN_DURATION_S,
    PRIORITIES,
    PROFILES,
    TenantJob,
    generate_jobs,
)

__all__ = [
    "Allocation",
    "ClusterState",
    "PlacementPolicy",
    "FirstFitPolicy",
    "BestFitPolicy",
    "DefragOnDeparturePolicy",
    "SteerOnArrivalPolicy",
    "make_placement_policy",
    "PLACEMENT_POLICY_NAMES",
    "TenancyConfig",
    "TenancyStats",
    "TenancySimulator",
    "simulate_tenancy",
    "set_progress_log",
    "FABRICS",
    "TenantJob",
    "generate_jobs",
    "JOB_CATALOG",
    "PROFILES",
    "PRIORITIES",
    "MIN_DURATION_S",
]
