"""Deterministic tenant-job workload generation.

A tenancy simulation is driven by a stream of training jobs: each job
asks for a slice shape from the catalog below, runs for a sampled
duration, and carries a priority class. The three arrival profiles model
the operational spectrum the ROADMAP's Morphlux direction calls out:

* ``"poisson"`` — memoryless arrivals at a constant rate (steady
  multi-tenant churn).
* ``"burst"`` — a piecewise-constant intensity that spikes by
  :data:`BURST_FACTOR` for the first :data:`BURST_FRACTION` of every
  :data:`BURST_PERIOD_S` window (submission waves after standups or
  preemption storms), time-rescaled so the seeded draws stay exponential.
* ``"trace"`` — a replayed schedule: arrivals evenly spaced at the
  configured rate (the recorded-trace stand-in; shapes/durations stay
  seeded).

Determinism follows :class:`~repro.fleet.process.RenewalFailureProcess`:
every random quantity draws from its own ``default_rng((seed, stream))``
substream, so adding a new sampled attribute never perturbs existing
ones, and the same seed always yields the same job list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TenantJob",
    "JOB_CATALOG",
    "PROFILES",
    "PRIORITIES",
    "MIN_DURATION_S",
    "generate_jobs",
]

#: Arrival profiles :func:`generate_jobs` understands.
PROFILES = ("poisson", "burst", "trace")

#: Priority classes, highest first. High-priority jobs jump the queue.
PRIORITIES = ("production", "best-effort")

#: The slice-shape catalog with mix weights: the paper's named slices
#: (Slice-1 = 4x2x1, Slice-3 = 4x4x1, Slice-4 = 4x4x2) plus the small
#: ad-hoc shapes that fragment a rack, weighted toward small jobs the
#: way real multi-tenant queues are.
JOB_CATALOG: tuple[tuple[tuple[int, int, int], int], ...] = (
    ((4, 4, 4), 2),
    ((4, 4, 2), 6),
    ((4, 4, 1), 10),
    ((4, 2, 1), 18),
    ((2, 2, 2), 14),
    ((2, 2, 1), 22),
    ((2, 1, 1), 14),
    ((1, 1, 1), 14),
)

#: Burst-profile shape: every 4 h window opens with a 30 min spike.
BURST_PERIOD_S = 4 * 3600.0
BURST_FRACTION = 0.125
BURST_FACTOR = 6.0

#: Substream indices (the RNG key is ``(seed, stream)``).
_ARRIVALS, _SHAPES, _DURATIONS, _PRIORITIES = 0, 1, 2, 3

#: Shortest job the generator emits; durations are exponential above it.
MIN_DURATION_S = 60.0

#: Fraction of jobs in the ``"production"`` priority class.
PRODUCTION_FRACTION = 0.2


@dataclass(frozen=True)
class TenantJob:
    """One tenant training job.

    Attributes:
        index: position in the arrival stream (names the job).
        arrival_s: submission time, simulation seconds.
        duration_s: run time once placed.
        shape: requested slice extent per rack-torus dimension.
        priority: ``"production"`` or ``"best-effort"``.
    """

    index: int
    arrival_s: float
    duration_s: float
    shape: tuple[int, ...]
    priority: str

    @property
    def name(self) -> str:
        """The allocation name the cluster tracks the job under."""
        return f"job-{self.index}"

    @property
    def chips(self) -> int:
        """Chips the job occupies."""
        count = 1
        for ext in self.shape:
            count *= ext
        return count


def _burst_intensity_scale(t: float) -> float:
    """Relative arrival intensity at ``t`` under the burst profile.

    Normalized so the *mean* intensity over a period equals 1 — the
    burst profile redistributes the same offered load into spikes.
    """
    mean = BURST_FACTOR * BURST_FRACTION + (1.0 - BURST_FRACTION)
    phase = (t % BURST_PERIOD_S) / BURST_PERIOD_S
    return (BURST_FACTOR if phase < BURST_FRACTION else 1.0) / mean


def _arrival_times(
    profile: str, horizon_s: float, rate_per_s: float, seed: int
) -> list[float]:
    if profile == "trace":
        # A replayed schedule: deterministic even spacing, first arrival
        # one gap in (an empty cluster at t=0 tells nothing).
        gap = 1.0 / rate_per_s
        count = int(horizon_s * rate_per_s)
        return [gap * (i + 1) for i in range(count) if gap * (i + 1) <= horizon_s]
    rng = np.random.default_rng((seed, _ARRIVALS))
    times: list[float] = []
    t = 0.0
    if profile == "poisson":
        while True:
            t += float(rng.exponential(1.0 / rate_per_s))
            if t > horizon_s:
                return times
            times.append(t)
    # burst: time-rescaling of a unit Poisson process through the
    # piecewise-constant intensity — exact, no thinning rejections.
    while True:
        budget = float(rng.exponential(1.0))
        while budget > 0.0:
            scale = _burst_intensity_scale(t)
            intensity = rate_per_s * scale
            # Time until the current window's intensity changes.
            phase = t % BURST_PERIOD_S
            boundary = (
                BURST_FRACTION * BURST_PERIOD_S
                if phase < BURST_FRACTION * BURST_PERIOD_S
                else BURST_PERIOD_S
            )
            window = boundary - phase
            if intensity * window >= budget:
                t += budget / intensity
                budget = 0.0
            else:
                budget -= intensity * window
                t += window
        if t > horizon_s:
            return times
        times.append(t)


def generate_jobs(
    horizon_s: float,
    arrivals_per_day: float,
    profile: str = "poisson",
    seed: int = 0,
    mean_duration_s: float = 1200.0,
) -> tuple[TenantJob, ...]:
    """The seeded job stream for one simulation horizon.

    Args:
        horizon_s: span to cover; the last arrival lands inside it.
        arrivals_per_day: mean offered arrival rate.
        profile: one of :data:`PROFILES`.
        seed: base RNG seed (substreamed per attribute).
        mean_duration_s: mean job run time (exponential above the
            :data:`MIN_DURATION_S` floor).

    Raises:
        ValueError: on an unknown profile, a non-positive rate/horizon,
            or a mean duration at or below the floor.
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown arrival profile {profile!r}; choose from {PROFILES}"
        )
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    if arrivals_per_day <= 0:
        raise ValueError("arrivals_per_day must be positive")
    if mean_duration_s <= MIN_DURATION_S:
        raise ValueError(
            f"mean_duration_s must exceed the {MIN_DURATION_S:g} s floor"
        )
    times = _arrival_times(profile, horizon_s, arrivals_per_day / 86400.0, seed)
    count = len(times)
    shapes_rng = np.random.default_rng((seed, _SHAPES))
    weights = np.array([w for _, w in JOB_CATALOG], dtype=float)
    picks = shapes_rng.choice(
        len(JOB_CATALOG), size=count, p=weights / weights.sum()
    )
    durations = np.random.default_rng((seed, _DURATIONS)).exponential(
        mean_duration_s - MIN_DURATION_S, size=count
    )
    priority_draws = np.random.default_rng((seed, _PRIORITIES)).random(count)
    return tuple(
        TenantJob(
            index=i,
            arrival_s=times[i],
            duration_s=MIN_DURATION_S + float(durations[i]),
            shape=JOB_CATALOG[int(picks[i])][0],
            priority=(
                PRIORITIES[0]
                if priority_draws[i] < PRODUCTION_FRACTION
                else PRIORITIES[1]
            ),
        )
        for i in range(count)
    )
