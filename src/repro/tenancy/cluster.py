"""Live allocation state of a multi-rack cluster.

:class:`ClusterState` owns one :class:`~repro.topology.slices.SliceAllocator`
per rack — the allocator's ``Slice`` geometry stays the single source of
truth for what a placement strands (``electrical_utilization`` /
``optical_utilization``) — and adds what the static topology layer has no
notion of: named jobs that arrive and depart, non-contiguous *steered*
placements a reconfigurable photonic fabric can assemble from scattered
free chips, per-rack wavelength-circuit budgets for that steering, and
the fragmentation telemetry the tenancy report charts.

A steered placement registers each of its chips as a unit slice in the
owning allocator (named ``job-N@k``), so allocator-level invariants — no
two slices share a chip — keep holding across both placement kinds, and
:meth:`check_consistent` can cross-check the cluster's incremental
occupancy sets against the allocators chip by chip.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..topology.slices import (
    NoContiguousPlacementError,
    ShapeTooLargeError,
    Slice,
    SliceAllocator,
    SliceOverlapError,
    WavelengthBudgetError,
)
from ..topology.torus import Coordinate, Torus

__all__ = ["Allocation", "ClusterState"]


@dataclass(frozen=True)
class Allocation:
    """One live placement.

    Attributes:
        name: the job's allocation name.
        rack: owning rack index (steered placements stay rack-local; the
            circuits that close their rings ride that rack's wavelength
            budget).
        chips: chip coordinates held, in allocation order.
        shape: requested slice shape.
        offset: box corner for a contiguous placement (``None`` when
            steered) — the true corner, not ``min(chips)``, which
            differs for wrap-around boxes.
        contiguous: True for a box placement (a real sub-torus slice),
            False for a steered chip set.
        electrical_utilization: fraction of per-chip bandwidth usable
            over static wiring (1.0 for single-chip jobs — nothing to
            ring over).
        optical_utilization: same fraction with reconfigurable steering.
        circuits: wavelength circuits consumed (steered chips).
    """

    name: str
    rack: int
    chips: tuple[Coordinate, ...]
    shape: tuple[int, ...]
    offset: Coordinate | None
    contiguous: bool
    electrical_utilization: float
    optical_utilization: float
    circuits: int

    @property
    def chip_count(self) -> int:
        return len(self.chips)


def _box_chips(
    rack_shape: tuple[int, ...],
    offset: Coordinate,
    shape: tuple[int, ...],
) -> list[Coordinate]:
    """Chips of the wrap-around box at ``offset`` (no Slice construction
    — this is the placement scan's hot path)."""
    axes = [
        [(off + i) % rack_ext for i in range(ext)]
        for off, ext, rack_ext in zip(offset, shape, rack_shape)
    ]
    chips = [(a,) for a in axes[0]]
    for axis in axes[1:]:
        chips = [c + (a,) for c in chips for a in axis]
    return chips


class ClusterState:
    """Occupancy of ``racks`` torus racks under a churning tenant mix.

    Attributes:
        rack_shape: extent of each rack torus.
        rack_count: racks in the cluster.
        steer_circuits: wavelength circuits available per rack for
            steered (non-contiguous) placements.
        allocations: live placements by job name.
    """

    def __init__(
        self,
        rack_shape: tuple[int, ...] = (4, 4, 4),
        racks: int = 4,
        steer_circuits: int = 64,
    ) -> None:
        if racks < 1:
            raise ValueError("the cluster needs at least one rack")
        if steer_circuits < 0:
            raise ValueError("steer_circuits cannot be negative")
        self.rack_shape = tuple(int(s) for s in rack_shape)
        self.rack_count = racks
        self.steer_circuits = steer_circuits
        self._torus = Torus(self.rack_shape)
        self.racks = [SliceAllocator(self._torus) for _ in range(racks)]
        self.allocations: dict[str, Allocation] = {}
        self._occupied: list[set[Coordinate]] = [set() for _ in range(racks)]
        self._circuits_used = [0] * racks
        # Free chips per rack, maintained incrementally — placement
        # scans and fragmentation sampling never rebuild occupancy.
        self._free = [self._torus.node_count] * racks

    # -- capacity ----------------------------------------------------------------

    @property
    def rack_chips(self) -> int:
        """Chips per rack."""
        return self._torus.node_count

    @property
    def total_chips(self) -> int:
        """Chips in the whole cluster."""
        return self.rack_chips * self.rack_count

    def free_chips(self, rack: int) -> int:
        """Free chips in ``rack``."""
        return self._free[rack]

    def total_free(self) -> int:
        """Free chips across every rack."""
        return sum(self._free)

    def occupied_chips(self) -> int:
        """Chips held by live allocations."""
        return self.total_chips - self.total_free()

    def circuits_used(self, rack: int) -> int:
        """Wavelength circuits steered placements consume in ``rack``."""
        return self._circuits_used[rack]

    # -- placement ---------------------------------------------------------------

    def find_offset(
        self,
        rack: int,
        shape: tuple[int, ...],
        ignore: frozenset[Coordinate] = frozenset(),
    ) -> Coordinate | None:
        """First lexicographic offset where ``shape`` fits in ``rack``,
        or ``None``. ``ignore`` chips count as free — the defrag policy
        scans for a survivor's new home without releasing it first.
        Raises :class:`ShapeTooLargeError` when no offset could ever
        host the shape."""
        for ext, rack_ext in zip(shape, self.rack_shape):
            if ext > rack_ext:
                raise ShapeTooLargeError(
                    f"shape {shape} exceeds the rack torus {self.rack_shape}"
                )
        volume = 1
        for ext in shape:
            volume *= ext
        if volume > self._free[rack] + len(ignore):
            return None
        taken = self._occupied[rack]
        if ignore:
            taken = taken - ignore
        for offset in self._torus.nodes():
            if offset in taken:
                continue
            if all(c not in taken for c in _box_chips(self.rack_shape, offset, shape)):
                return offset
        return None

    def allocate_box(
        self, name: str, shape: tuple[int, ...], rack: int, offset: Coordinate
    ) -> Allocation:
        """Place a contiguous sub-torus slice.

        Raises:
            SliceOverlapError: if a requested chip is taken (also when a
                placement with this name is already live).
            ShapeTooLargeError: if the shape exceeds the rack torus.
        """
        if name in self.allocations:
            raise SliceOverlapError(f"allocation {name!r} is already live")
        placed = self.racks[rack].allocate(name, shape, offset)
        self._register(name, rack, placed.chips(), shape, placed)
        return self.allocations[name]

    def allocate_steered(
        self,
        name: str,
        shape: tuple[int, ...],
        rack: int,
        chips: tuple[Coordinate, ...] | None = None,
    ) -> Allocation:
        """Assemble a placement from scattered free chips via steering.

        The photonic fabric's reconfigurable reach closes congestion-free
        rings over arbitrary chip sets, so any ``chips(shape)`` free chips
        in one rack suffice — each one costs a wavelength circuit. By
        default the lexicographically-first free chips are taken;
        ``chips`` pins an explicit set (the defrag policy's undo path).

        Raises:
            SliceOverlapError: if a placement with this name is live, or
                a pinned chip is taken.
            NoContiguousPlacementError: if the rack lacks free chips
                (steering widens *where* chips may sit, not *how many*
                exist).
            WavelengthBudgetError: if the rack's circuit inventory
                cannot close the steered rings.
        """
        if name in self.allocations:
            raise SliceOverlapError(f"allocation {name!r} is already live")
        needed = 1
        for ext in shape:
            needed *= ext
        if needed > self._free[rack]:
            raise NoContiguousPlacementError(
                f"rack {rack} has {self._free[rack]} free chips; "
                f"{name} needs {needed}"
            )
        if self._circuits_used[rack] + needed > self.steer_circuits:
            raise WavelengthBudgetError(
                f"steering {name} needs {needed} circuits; rack {rack} has "
                f"{self.steer_circuits - self._circuits_used[rack]} of "
                f"{self.steer_circuits} left"
            )
        taken = self._occupied[rack]
        if chips is None:
            picked: list[Coordinate] = []
            for chip in self._torus.nodes():
                if chip not in taken:
                    picked.append(chip)
                    if len(picked) == needed:
                        break
        else:
            picked = list(chips)
            if len(picked) != needed:
                raise ValueError(
                    f"{name}: pinned {len(picked)} chips for a "
                    f"{needed}-chip shape"
                )
            busy = [c for c in picked if c in taken]
            if busy:
                raise SliceOverlapError(
                    f"pinned chip {busy[0]} for {name} is already allocated"
                )
        allocator = self.racks[rack]
        for k, chip in enumerate(picked):
            allocator.allocate(f"{name}@{k}", (1,) * self._torus.ndim, chip)
        self._register(name, rack, picked, shape, None)
        return self.allocations[name]

    def steer_rings(self, name: str) -> Allocation:
        """Close a contiguous slice's stranded rings with circuits.

        A sub-rack box cannot ring congestion-free over the dimensions it
        does not span (Figure 5b); steering one circuit per chip closes
        those rings over the optical fabric, lifting the placement to
        full utilization — when the rack's budget allows. Returns the
        (possibly unchanged) allocation.
        """
        allocation = self.allocations[name]
        if not allocation.contiguous or allocation.optical_utilization >= 1.0:
            return allocation
        needed = allocation.chip_count
        rack = allocation.rack
        if self._circuits_used[rack] + needed > self.steer_circuits:
            return allocation
        self._circuits_used[rack] += needed
        upgraded = replace(
            allocation,
            optical_utilization=1.0,
            circuits=allocation.circuits + needed,
        )
        self.allocations[name] = upgraded
        return upgraded

    def _register(
        self,
        name: str,
        rack: int,
        chips: list[Coordinate],
        shape: tuple[int, ...],
        placed: Slice | None,
    ) -> None:
        contiguous = placed is not None
        if len(chips) == 1:
            electrical = optical = 1.0
        elif contiguous:
            electrical = placed.electrical_utilization()
            optical = placed.optical_utilization()
        else:
            # Steered rings are congestion-free by construction; static
            # wiring cannot realize them at all.
            electrical, optical = 0.0, 1.0
        circuits = 0 if contiguous else len(chips)
        self._occupied[rack].update(chips)
        self._free[rack] -= len(chips)
        self._circuits_used[rack] += circuits
        self.allocations[name] = Allocation(
            name=name,
            rack=rack,
            chips=tuple(chips),
            shape=tuple(shape),
            offset=placed.offset if placed is not None else None,
            contiguous=contiguous,
            electrical_utilization=electrical,
            optical_utilization=optical,
            circuits=circuits,
        )

    def release(self, name: str) -> Allocation:
        """Free the placement called ``name`` and return it.

        Raises:
            KeyError: if no such placement is live.
        """
        allocation = self.allocations.pop(name)
        allocator = self.racks[allocation.rack]
        if allocation.contiguous:
            allocator.release(name)
        else:
            for k in range(allocation.chip_count):
                allocator.release(f"{name}@{k}")
        self._occupied[allocation.rack].difference_update(allocation.chips)
        self._free[allocation.rack] += allocation.chip_count
        self._circuits_used[allocation.rack] -= allocation.circuits
        return allocation

    # -- fragmentation telemetry ---------------------------------------------------

    def largest_allocatable(
        self, shapes: tuple[tuple[int, ...], ...]
    ) -> int:
        """Chips of the largest catalog shape a contiguous placement can
        still host anywhere in the cluster (0 when none fits).

        This is the electrical view of fragmentation: free capacity only
        counts if it is box-shaped. Compare :meth:`total_free`, which is
        what a steering fabric can still use.
        """
        best = 0
        for shape in shapes:
            volume = 1
            for ext in shape:
                volume *= ext
            if volume <= best:
                continue
            for rack in range(self.rack_count):
                try:
                    if self.find_offset(rack, shape) is not None:
                        best = volume
                        break
                except ShapeTooLargeError:
                    break
        return best

    def stranded_fraction_rate(self, fabric: str) -> float:
        """Sum over live allocations of ``chips * (1 - utilization)`` —
        the instantaneous rate at which chip-bandwidth-seconds strand."""
        if fabric == "electrical":
            return sum(
                a.chip_count * (1.0 - a.electrical_utilization)
                for a in self.allocations.values()
            )
        return sum(
            a.chip_count * (1.0 - a.optical_utilization)
            for a in self.allocations.values()
        )

    # -- invariants ----------------------------------------------------------------

    def check_consistent(self) -> None:
        """Cross-check incremental occupancy against the allocators.

        Raises:
            AssertionError: on any divergence — overlapping
                allocations, free-count drift, or circuit-budget drift.
        """
        for rack in range(self.rack_count):
            from_allocator: set[Coordinate] = set()
            total = 0
            for s in self.racks[rack].slices:
                chips = s.chips()
                total += len(chips)
                from_allocator.update(chips)
            assert total == len(from_allocator), (
                f"rack {rack}: allocator slices overlap "
                f"({total} chips in {len(from_allocator)} coordinates)"
            )
            assert from_allocator == self._occupied[rack], (
                f"rack {rack}: occupancy set diverged from the allocator"
            )
            assert self._free[rack] == self.rack_chips - len(from_allocator), (
                f"rack {rack}: free-count drift"
            )
            assert 0 <= self._circuits_used[rack] <= self.steer_circuits, (
                f"rack {rack}: circuit budget out of range"
            )
        by_rack_chips = sum(a.chip_count for a in self.allocations.values())
        assert by_rack_chips == self.occupied_chips(), (
            "allocation records diverged from occupancy"
        )
