"""Pluggable placement/steering policies for the tenancy simulator.

A policy decides *where* an arriving job's slice lands on the cluster
(and what happens to the survivors when a job departs). Four policies
span the design space the Morphlux direction calls out:

* :class:`FirstFitPolicy` — first rack, first lexicographic offset.
* :class:`BestFitPolicy` — tries the shape's axis orientations and racks,
  preferring the orientation with the most congestion-free rings and the
  tightest rack (classic best-fit keeps big holes intact).
* :class:`DefragOnDeparturePolicy` — first-fit placement plus departure-
  time compaction: survivors repack toward low offsets and steered chip
  sets convert back to boxes, with every move guarded so the
  fragmentation metric (largest allocatable slice) never regresses.
* :class:`SteerOnArrivalPolicy` — the photonic fabric's move: best-fit
  box placement, then wavelength steering — closing the stranded rings
  of sub-rack boxes and, when no contiguous hole exists, assembling the
  slice from scattered free chips. Requires reconfigurable reach, so the
  simulator refuses it on the electrical fabric.

Policies are stateless between calls (all state lives in the
:class:`~repro.tenancy.cluster.ClusterState`); one instance can serve a
whole simulation.
"""

from __future__ import annotations

import itertools
from typing import Protocol

from ..topology.slices import (
    AllocationError,
    ShapeTooLargeError,
    WavelengthBudgetError,
)
from .cluster import Allocation, ClusterState
from .workload import JOB_CATALOG

__all__ = [
    "PlacementPolicy",
    "FirstFitPolicy",
    "BestFitPolicy",
    "DefragOnDeparturePolicy",
    "SteerOnArrivalPolicy",
    "make_placement_policy",
    "PLACEMENT_POLICY_NAMES",
]

PLACEMENT_POLICY_NAMES = ("first-fit", "best-fit", "defrag", "steer")

#: Distinct catalog shapes, largest first — the fragmentation probe set.
CATALOG_SHAPES: tuple[tuple[int, ...], ...] = tuple(
    sorted(
        {shape for shape, _ in JOB_CATALOG},
        key=lambda s: (-s[0] * s[1] * s[2], s),
    )
)


class PlacementPolicy(Protocol):
    """Placement contract the simulator drives."""

    name: str
    #: True when the policy needs reconfigurable (photonic) reach.
    requires_steering: bool

    def place(
        self, cluster: ClusterState, name: str, shape: tuple[int, ...]
    ) -> Allocation | None:
        """Place ``name`` or return ``None`` when nothing fits now."""
        ...

    def on_departure(self, cluster: ClusterState, rack: int) -> int:
        """React to a departure from ``rack``; returns moves performed."""
        ...


def _orientation_score(
    shape: tuple[int, ...], rack_shape: tuple[int, ...]
) -> float:
    """Fraction of dimensions whose ring is congestion-free as placed."""
    if all(ext == 1 for ext in shape):
        return 1.0
    usable = sum(
        1
        for ext, rack_ext in zip(shape, rack_shape)
        if ext > 1 and ext == rack_ext
    )
    return usable / len(rack_shape)


class FirstFitPolicy:
    """First rack, first lexicographic offset that fits."""

    name = "first-fit"
    requires_steering = False

    def place(
        self, cluster: ClusterState, name: str, shape: tuple[int, ...]
    ) -> Allocation | None:
        for rack in range(cluster.rack_count):
            try:
                offset = cluster.find_offset(rack, shape)
            except ShapeTooLargeError:
                # No box anywhere can host this job; it queues until the
                # patience timeout (racks share one geometry).
                return None
            if offset is not None:
                return cluster.allocate_box(name, shape, rack, offset)
        return None

    def on_departure(self, cluster: ClusterState, rack: int) -> int:
        return 0


class BestFitPolicy:
    """Orientation- and rack-aware box placement.

    Candidates are every axis orientation of the shape on every rack
    that can host it; the winner maximizes congestion-free rings, then
    takes the tightest rack (fewest free chips), then the lowest rack
    index — a deterministic total order.
    """

    name = "best-fit"
    requires_steering = False

    def place(
        self, cluster: ClusterState, name: str, shape: tuple[int, ...]
    ) -> Allocation | None:
        orientations = sorted(
            {tuple(p) for p in itertools.permutations(shape)},
            key=lambda s: (-_orientation_score(s, cluster.rack_shape), s),
        )
        best = None  # (score, free, rack, offset, oriented)
        for oriented in orientations:
            score = _orientation_score(oriented, cluster.rack_shape)
            if best is not None and score < best[0]:
                break  # orientations are score-sorted; no later win
            for rack in range(cluster.rack_count):
                try:
                    offset = cluster.find_offset(rack, oriented)
                except ShapeTooLargeError:
                    break  # orientation exceeds the (shared) rack torus
                if offset is None:
                    continue
                key = (score, -cluster.free_chips(rack), -rack)
                if best is None or key > (best[0], -best[1], -best[2]):
                    best = (score, cluster.free_chips(rack), rack, offset, oriented)
        if best is None:
            return None
        _, _, rack, offset, oriented = best
        return cluster.allocate_box(name, oriented, rack, offset)

    def on_departure(self, cluster: ClusterState, rack: int) -> int:
        return 0


class DefragOnDeparturePolicy(FirstFitPolicy):
    """First-fit placement plus guarded compaction on every departure.

    Each survivor of the departed rack is tried at a lower offset (and
    steered chip sets are tried as boxes, returning their wavelength
    circuits); a move is kept only if the cluster-wide fragmentation
    metric — the largest catalog shape still allocatable contiguously —
    does not regress, so the metric is monotone across a defrag pass by
    construction.
    """

    name = "defrag"

    def on_departure(self, cluster: ClusterState, rack: int) -> int:
        moves = 0
        survivors = sorted(
            (a for a in cluster.allocations.values() if a.rack == rack),
            key=lambda a: min(a.chips),
        )
        before = cluster.largest_allocatable(CATALOG_SHAPES)
        for allocation in survivors:
            after = self._try_move(cluster, allocation, before)
            if after is not None:
                moves += 1
                before = after  # guarded, so never below the old value
        return moves

    def _try_move(
        self, cluster: ClusterState, allocation: Allocation, before: int
    ) -> int | None:
        """Relocate one survivor; returns the post-move fragmentation
        metric when the move is kept, ``None`` otherwise."""
        name, rack = allocation.name, allocation.rack
        # Scan with the survivor's own chips masked free — the offset
        # found is exactly the post-release first fit, so non-candidates
        # cost no release/restore churn.
        offset = cluster.find_offset(
            rack, allocation.shape, ignore=frozenset(allocation.chips)
        )
        if offset is None:
            return None
        if allocation.contiguous and not offset < allocation.offset:
            # A strict improvement is a lexicographically lower corner;
            # a steered set turning into a box always improves
            # (circuits come back).
            return None
        released = cluster.release(name)
        cluster.allocate_box(name, released.shape, rack, offset)
        after = cluster.largest_allocatable(CATALOG_SHAPES)
        if after >= before:
            if released.circuits > 0:
                # The old placement steered rings closed; keep the
                # optical upgrade (no-op when the box rings fully).
                cluster.steer_rings(name)
            return after
        cluster.release(name)  # regressed the metric: undo
        self._restore(cluster, released)
        return None

    @staticmethod
    def _restore(cluster: ClusterState, released: Allocation) -> None:
        if released.contiguous:
            restored = cluster.allocate_box(
                released.name, released.shape, released.rack, released.offset
            )
            if released.optical_utilization > restored.optical_utilization:
                cluster.steer_rings(released.name)
        else:
            cluster.allocate_steered(
                released.name,
                released.shape,
                released.rack,
                chips=released.chips,
            )


class SteerOnArrivalPolicy:
    """Photonic placement: box first, then wavelength steering.

    Wraps a base box policy (best-fit by default). After a box placement
    that still strands bandwidth, circuits are steered to close the
    slice's broken rings (Figure 7's repair, applied to provisioning).
    When no box fits anywhere, the slice is assembled from scattered
    free chips of the tightest rack whose circuit budget allows it.
    """

    name = "steer"
    requires_steering = True

    def __init__(self, base: PlacementPolicy | None = None):
        self.base = base if base is not None else BestFitPolicy()

    def place(
        self, cluster: ClusterState, name: str, shape: tuple[int, ...]
    ) -> Allocation | None:
        allocation = self.base.place(cluster, name, shape)
        if allocation is not None:
            if allocation.optical_utilization < 1.0:
                allocation = cluster.steer_rings(name)
            return allocation
        needed = 1
        for ext in shape:
            needed *= ext
        candidates = sorted(
            (
                rack
                for rack in range(cluster.rack_count)
                if cluster.free_chips(rack) >= needed
            ),
            key=lambda rack: (cluster.free_chips(rack), rack),
        )
        for rack in candidates:
            try:
                return cluster.allocate_steered(name, shape, rack)
            except WavelengthBudgetError:
                continue
            except AllocationError:  # pragma: no cover - free-count races
                continue
        return None

    def on_departure(self, cluster: ClusterState, rack: int) -> int:
        return self.base.on_departure(cluster, rack)


def make_placement_policy(name: str) -> PlacementPolicy:
    """Build a fresh policy by name (:data:`PLACEMENT_POLICY_NAMES`)."""
    if name == "first-fit":
        return FirstFitPolicy()
    if name == "best-fit":
        return BestFitPolicy()
    if name == "defrag":
        return DefragOnDeparturePolicy()
    if name == "steer":
        return SteerOnArrivalPolicy()
    raise ValueError(
        f"unknown placement policy {name!r}; "
        f"choose from {PLACEMENT_POLICY_NAMES}"
    )
