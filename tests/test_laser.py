"""Tests for the WDM laser bank."""

import pytest

from repro.phy.constants import WAVELENGTH_RATE_BPS
from repro.phy.laser import LaserBank


class TestComb:
    def test_default_has_sixteen_channels(self):
        assert LaserBank().channels == 16

    def test_comb_length(self):
        assert len(LaserBank().comb()) == 16

    def test_channels_evenly_spaced(self):
        bank = LaserBank()
        comb = bank.comb()
        gaps = [
            comb[i + 1].frequency_hz - comb[i].frequency_hz
            for i in range(len(comb) - 1)
        ]
        assert all(g == pytest.approx(bank.spacing_hz) for g in gaps)

    def test_comb_centered(self):
        bank = LaserBank()
        comb = bank.comb()
        mid = (comb[0].frequency_hz + comb[-1].frequency_hz) / 2
        assert mid == pytest.approx(bank.center_hz)

    def test_channel_out_of_range(self):
        with pytest.raises(IndexError):
            LaserBank().channel(16)
        with pytest.raises(IndexError):
            LaserBank().channel(-1)

    def test_wavelength_in_c_band(self):
        wl = LaserBank().channel(8).wavelength_m
        assert 1.5e-6 < wl < 1.6e-6

    def test_needs_at_least_one_channel(self):
        with pytest.raises(ValueError):
            LaserBank(channels=0)

    def test_positive_spacing_required(self):
        with pytest.raises(ValueError):
            LaserBank(spacing_hz=0.0)


class TestFailures:
    def test_fail_reduces_working_channels(self):
        bank = LaserBank()
        bank.fail(3)
        assert bank.working_channels == 15
        assert not bank.is_working(3)

    def test_fail_idempotent(self):
        bank = LaserBank()
        bank.fail(3)
        bank.fail(3)
        assert bank.working_channels == 15

    def test_repair_restores(self):
        bank = LaserBank()
        bank.fail(3)
        bank.repair(3)
        assert bank.working_channels == 16
        assert bank.is_working(3)

    def test_fail_out_of_range(self):
        with pytest.raises(IndexError):
            LaserBank().fail(99)

    def test_aggregate_rate_tracks_failures(self):
        bank = LaserBank()
        assert bank.aggregate_rate_bps() == pytest.approx(16 * WAVELENGTH_RATE_BPS)
        bank.fail(0)
        bank.fail(1)
        assert bank.aggregate_rate_bps() == pytest.approx(14 * WAVELENGTH_RATE_BPS)
