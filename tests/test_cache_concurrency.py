"""Concurrent DiskResultCache access from many sessions and processes.

Satellite for the serving PR: the evaluation service pools several
persistent sessions over one cache directory, and sweep workers (or a
second server) may hammer the same namespace from other processes. The
atomic temp-file + rename protocol must keep every entry parseable and
the stats consistent no matter the interleaving.
"""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.api import (
    DiskResultCache,
    FabricSession,
    ScenarioSpec,
    SliceSpec,
    run_many,
    spec_key,
)


def grid_specs(n):
    """``n`` distinct cheap specs every worker evaluates in its own order."""
    return [
        ScenarioSpec(
            fabric="electrical",
            slices=(SliceSpec("S", (2, 2, 1), (0, 0, 0)),),
            outputs=("costs",),
            seed=seed,
        )
        for seed in range(n)
    ]


def _hammer(cache_dir, worker, n_specs):
    """One worker process: evaluate the grid against the shared cache.

    Returns ``(json_by_key, stats)`` so the parent can cross-check every
    worker observed identical bytes for every spec.
    """
    cache = DiskResultCache(cache_dir)
    session = FabricSession(result_cache=cache)
    specs = grid_specs(n_specs)
    # Stagger the order per worker to force put/get interleavings.
    ordered = specs[worker:] + specs[:worker]
    payload = {}
    for spec in ordered:
        result = session.run(spec)
        payload[spec_key(spec)] = result.to_json()
    stats = session.cache_stats()
    return payload, {"hits": stats.hits, "misses": stats.misses}


class TestMultiProcessCache:
    @pytest.mark.parametrize("workers", [4])
    def test_hammering_one_namespace_stays_consistent(self, tmp_path, workers):
        n_specs = 8
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_hammer, str(tmp_path), worker, n_specs)
                for worker in range(workers)
            ]
            outcomes = [future.result(timeout=300) for future in futures]

        # Every worker saw byte-identical JSON for every spec.
        reference = outcomes[0][0]
        assert len(reference) == n_specs
        for payload, _ in outcomes[1:]:
            assert payload == reference

        # Stats are sane: each worker evaluated or hit every spec exactly
        # once, and nothing was double-counted.
        for _, stats in outcomes:
            assert stats["hits"] + stats["misses"] == n_specs

        # No torn or partial entries remain on disk: every file parses
        # and round-trips to the bytes the workers reported.
        cache = DiskResultCache(tmp_path)
        on_disk = sorted(tmp_path.rglob("*.json"))
        assert len(on_disk) == n_specs
        assert list(tmp_path.rglob("*.tmp")) == []
        for path in on_disk:
            json.loads(path.read_text(encoding="utf-8"))  # parses cleanly
        for key, expected in reference.items():
            assert cache.get(key).to_json() == expected
        stats = cache.cache_stats()
        assert stats["entries"] == n_specs
        assert stats["evictions"] == 0

    def test_two_sessions_in_one_process_share_entries(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        first = FabricSession(result_cache=cache)
        second = FabricSession(result_cache=cache)
        specs = grid_specs(4)
        for spec in specs:
            first.run(spec)
        for spec in specs:
            second.run(spec)
        assert first.cache_stats().misses == 4
        assert second.cache_stats().hits == 4
        assert second.cache_stats().misses == 0

    def test_capped_cache_survives_parallel_sweep(self, tmp_path):
        """A bounded cache under a parallel sweep stays within its cap and
        still returns correct results (evictions force re-evaluation,
        never corruption)."""
        specs = grid_specs(6)
        sweep = run_many(specs, jobs=2, cache_dir=tmp_path)
        serial = run_many(specs, no_cache=True)
        assert json.dumps(
            sweep.to_dict(include_timing=False), sort_keys=True
        ) == json.dumps(serial.to_dict(include_timing=False), sort_keys=True)
        capped = DiskResultCache(tmp_path, max_entries=3)
        # Re-put everything through the capped view to trigger pruning.
        for row in sweep.runs:
            capped.put(spec_key(row.spec), row.result)
        assert capped.cache_stats()["entries"] <= 3
        warm = run_many(specs, cache_dir=tmp_path)
        assert json.dumps(
            warm.to_dict(include_timing=False), sort_keys=True
        ) == json.dumps(serial.to_dict(include_timing=False), sort_keys=True)
