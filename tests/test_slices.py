"""Tests for slice geometry and the paper's congestion-freedom rule."""

import pytest

from repro.topology.slices import (
    AllocationError,
    NoContiguousPlacementError,
    ShapeTooLargeError,
    Slice,
    SliceAllocator,
    SliceOverlapError,
    WavelengthBudgetError,
)
from repro.topology.torus import Link, Torus


@pytest.fixture
def rack():
    return Torus((4, 4, 4))


def make_slice(rack, name="s", shape=(4, 2, 1), offset=(0, 0, 0)):
    return Slice(name=name, rack=rack, offset=offset, shape=shape)


class TestGeometry:
    def test_chip_count(self, rack):
        assert make_slice(rack, shape=(4, 2, 1)).chip_count == 8

    def test_chips_enumeration(self, rack):
        chips = make_slice(rack, shape=(2, 2, 1)).chips()
        assert len(chips) == 4
        assert (0, 0, 0) in chips and (1, 1, 0) in chips

    def test_contains(self, rack):
        slc = make_slice(rack, shape=(4, 2, 1), offset=(0, 0, 3))
        assert slc.contains((2, 1, 3))
        assert not slc.contains((2, 2, 3))
        assert not slc.contains((2, 1, 0))

    def test_wraparound_placement(self, rack):
        slc = make_slice(rack, shape=(2, 1, 1), offset=(3, 0, 0))
        assert set(slc.chips()) == {(3, 0, 0), (0, 0, 0)}
        assert slc.contains((0, 0, 0))

    def test_shape_validation(self, rack):
        with pytest.raises(ValueError):
            make_slice(rack, shape=(5, 1, 1))
        with pytest.raises(ValueError):
            make_slice(rack, shape=(0, 1, 1))
        with pytest.raises(ValueError):
            make_slice(rack, offset=(4, 0, 0))
        with pytest.raises(ValueError):
            Slice(name="bad", rack=rack, offset=(0, 0), shape=(1, 1))


class TestRings:
    def test_ring_nodes_along_dim(self, rack):
        slc = make_slice(rack, shape=(4, 2, 1))
        ring = slc.ring_nodes(0, (0, 1, 0))
        assert ring == [(0, 1, 0), (1, 1, 0), (2, 1, 0), (3, 1, 0)]

    def test_ring_nodes_requires_membership(self, rack):
        slc = make_slice(rack, shape=(4, 2, 1))
        with pytest.raises(ValueError):
            slc.ring_nodes(0, (0, 3, 0))

    def test_rings_count_is_cross_section(self, rack):
        slc = make_slice(rack, shape=(4, 4, 1))
        assert len(slc.rings(0)) == 4  # one X ring per y value
        assert len(slc.rings(2)) == 16

    def test_full_span_ring_links_internal(self, rack):
        slc = make_slice(rack, shape=(4, 1, 1))
        links = slc.ring_links(0)
        assert len(links) == 4
        for link in links:
            assert slc.contains(link.src)
            assert slc.contains(link.dst)

    def test_under_span_ring_wraps_through_foreign_chips(self, rack):
        slc = make_slice(rack, shape=(1, 2, 1))
        links = slc.ring_links(1)
        # 1 internal hop + 3-link wrap back through y=2,3.
        assert len(links) == 4
        foreign = [link for link in links if not slc.contains(link.dst)]
        assert foreign  # the Figure 5b congestion mechanism

    def test_physical_hop_adjacent(self, rack):
        slc = make_slice(rack, shape=(4, 2, 1))
        hops = slc.physical_hop((0, 0, 0), (1, 0, 0), 0)
        assert hops == [Link((0, 0, 0), (1, 0, 0))]

    def test_physical_hop_wrap(self, rack):
        slc = make_slice(rack, shape=(4, 2, 1))
        hops = slc.physical_hop((0, 1, 0), (0, 0, 0), 1)
        assert len(hops) == 3  # forward walk y=1 -> 2 -> 3 -> 0


class TestCongestionRule:
    def test_slice1_only_x_usable(self, rack):
        slc = make_slice(rack, "Slice-1", shape=(4, 2, 1))
        assert slc.usable_dimensions() == [0]
        assert slc.active_dimensions() == [0, 1]

    def test_slice3_x_and_y_usable(self, rack):
        slc = make_slice(rack, "Slice-3", shape=(4, 4, 1))
        assert slc.usable_dimensions() == [0, 1]

    def test_full_rack_all_usable(self, rack):
        slc = make_slice(rack, "full", shape=(4, 4, 4))
        assert slc.usable_dimensions() == [0, 1, 2]

    def test_extent_one_never_usable(self, rack):
        slc = make_slice(rack, shape=(1, 1, 4))
        assert slc.usable_dimensions() == [2]

    def test_utilization_slice1(self, rack):
        slc = make_slice(rack, shape=(4, 2, 1))
        assert slc.electrical_utilization() == pytest.approx(1 / 3)
        assert slc.optical_utilization() == 1.0

    def test_utilization_slice3(self, rack):
        slc = make_slice(rack, shape=(4, 4, 1))
        assert slc.electrical_utilization() == pytest.approx(2 / 3)

    def test_optical_zero_when_no_ring_possible(self, rack):
        slc = make_slice(rack, shape=(1, 1, 1))
        assert slc.optical_utilization() == 0.0

    def test_invalid_dim_rejected(self, rack):
        with pytest.raises(ValueError):
            make_slice(rack).dimension_is_congestion_free(5)


class TestAllocator:
    def test_allocate_and_free_chips(self, rack):
        allocator = SliceAllocator(rack)
        allocator.allocate("a", (4, 4, 1), (0, 0, 0))
        assert len(allocator.free_chips()) == 48

    def test_overlap_rejected(self, rack):
        allocator = SliceAllocator(rack)
        allocator.allocate("a", (4, 4, 1), (0, 0, 0))
        with pytest.raises(AllocationError):
            allocator.allocate("b", (1, 1, 1), (0, 0, 0))

    def test_first_fit_avoids_taken_chips(self, rack):
        allocator = SliceAllocator(rack)
        allocator.allocate("a", (4, 4, 1), (0, 0, 0))
        slc = allocator.allocate_first_fit("b", (4, 4, 1))
        assert slc.offset != (0, 0, 0)
        assert all(not s.contains(c) for s in allocator.slices[:1] for c in slc.chips())

    def test_first_fit_failure(self, rack):
        allocator = SliceAllocator(rack)
        allocator.allocate("a", (4, 4, 4), (0, 0, 0))
        with pytest.raises(AllocationError):
            allocator.allocate_first_fit("b", (1, 1, 1))

    def test_release(self, rack):
        allocator = SliceAllocator(rack)
        allocator.allocate("a", (4, 4, 4), (0, 0, 0))
        allocator.release("a")
        assert len(allocator.free_chips()) == 64

    def test_release_unknown(self, rack):
        with pytest.raises(KeyError):
            SliceAllocator(rack).release("ghost")

    def test_slice_of(self, rack):
        allocator = SliceAllocator(rack)
        slc = allocator.allocate("a", (4, 4, 1), (0, 0, 0))
        assert allocator.slice_of((1, 1, 0)) is slc
        assert allocator.slice_of((1, 1, 3)) is None


class TestNamedAllocationErrors:
    """Every placement failure names its constraint via a subclass, and
    pre-existing ``except AllocationError`` / ``except ValueError``
    call sites keep working."""

    def test_oversized_shape_from_construction(self, rack):
        with pytest.raises(ShapeTooLargeError):
            make_slice(rack, shape=(5, 1, 1))
        with pytest.raises(AllocationError):
            make_slice(rack, shape=(5, 1, 1))
        with pytest.raises(ValueError):
            make_slice(rack, shape=(5, 1, 1))

    def test_oversized_shape_from_allocate(self, rack):
        allocator = SliceAllocator(rack)
        with pytest.raises(ShapeTooLargeError):
            allocator.allocate("a", (1, 1, 8), (0, 0, 0))

    def test_overlap_is_named(self, rack):
        allocator = SliceAllocator(rack)
        allocator.allocate("a", (4, 4, 1), (0, 0, 0))
        with pytest.raises(SliceOverlapError) as excinfo:
            allocator.allocate("b", (2, 2, 2), (0, 0, 0))
        assert isinstance(excinfo.value, AllocationError)

    def test_full_rack_is_named(self, rack):
        allocator = SliceAllocator(rack)
        allocator.allocate("a", (4, 4, 4), (0, 0, 0))
        with pytest.raises(NoContiguousPlacementError) as excinfo:
            allocator.allocate_first_fit("b", (1, 1, 1))
        assert isinstance(excinfo.value, AllocationError)

    def test_wavelength_budget_shares_the_root(self):
        assert issubclass(WavelengthBudgetError, AllocationError)
        assert not issubclass(WavelengthBudgetError, ValueError)

    def test_subclasses_are_distinct(self, rack):
        # An overlap must not masquerade as a geometry violation: the
        # ValueError mixin belongs to ShapeTooLargeError alone.
        allocator = SliceAllocator(rack)
        allocator.allocate("a", (4, 4, 4), (0, 0, 0))
        with pytest.raises(SliceOverlapError):
            allocator.allocate("b", (1, 1, 1), (2, 2, 2))
        assert not issubclass(SliceOverlapError, ValueError)
        assert not issubclass(NoContiguousPlacementError, ValueError)
