"""Tests for ``repro.serve`` — batching core, HTTP front end, client.

The service-level tests drive :class:`EvaluationService` directly inside
``asyncio.run`` with an injected, gate-controlled evaluator, so admission
and batching behavior is deterministic (no sleeps standing in for
synchronization). The HTTP-level tests run a real :class:`ServerThread`
and talk to it with :class:`ServeClient` over loopback.
"""

import asyncio
import json
import threading
import time
from pathlib import Path

import pytest

from repro import api
from repro.api import ScenarioSpec
from repro.api.batch import SpecRun
from repro.serve import (
    EvaluationService,
    QueueFull,
    ServeClient,
    ServeError,
    ServerConfig,
    ServerThread,
    ShuttingDown,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def golden_spec() -> ScenarioSpec:
    """The spec behind ``tests/golden/serve_evaluate.json`` (and
    ``simulate.txt``): Figure 5b slices, sim mode, telemetry output."""
    payload = json.loads((GOLDEN_DIR / "serve_request.json").read_text())
    return ScenarioSpec.from_dict(payload)


def cheap_spec(seed: int = 42) -> ScenarioSpec:
    """A closed-form cost spec — milliseconds to evaluate, distinct per seed."""
    return ScenarioSpec(
        slices=(api.SliceSpec("S", (2, 2, 1), (0, 0, 0)),),
        outputs=("costs",),
        seed=seed,
    )


@pytest.fixture(scope="module")
def cheap_result():
    """One real RunResult to hand out from fake evaluators."""
    return api.run(cheap_spec())


def fake_rows(result, *, record=None, gate=None, delay_s=0.0):
    """An injectable ``evaluate_batch`` with test hooks.

    Args:
        result: the RunResult every row carries.
        record: list collecting each call's batch size.
        gate: a ``threading.Event`` the evaluator blocks on first.
        delay_s: extra sleep per call (timeout tests).
    """

    def evaluate(session, specs):
        if gate is not None:
            assert gate.wait(timeout=30), "test gate never opened"
        if delay_s:
            time.sleep(delay_s)
        if record is not None:
            record.append(len(specs))
        return [
            SpecRun(spec=s, result=result, elapsed_s=0.0, from_cache=False)
            for s in specs
        ]

    return evaluate


async def _poll(predicate, timeout_s=10.0):
    """Await ``predicate()`` turning true without blocking the loop."""
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        await asyncio.sleep(0.005)


class TestServerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0},
            {"jobs": -2},
            {"max_batch": 0},
            {"linger_ms": -1.0},
            {"queue_limit": 0},
            {"request_timeout_s": 0.0},
            {"port": -1},
            {"port": 70000},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServerConfig(**kwargs)

    def test_defaults_are_valid(self):
        config = ServerConfig()
        assert config.port == 8421
        assert config.jobs >= 1


class TestAdmission:
    def test_queue_full_is_exact(self, cheap_result):
        """With one busy session and ``queue_limit`` waiters, the next
        submit raises QueueFull — the bound is the queue, nothing hidden."""

        async def main():
            gate = threading.Event()
            service = EvaluationService(
                ServerConfig(
                    jobs=1, max_batch=1, queue_limit=2, no_cache=True
                ),
                evaluate_batch=fake_rows(cheap_result, gate=gate),
            )
            service.start()
            futures = [service.submit(cheap_spec(0))]
            # Wait for the batcher to pull it so the queue is empty again.
            await _poll(lambda: service._queue.qsize() == 0)
            futures.append(service.submit(cheap_spec(1)))
            futures.append(service.submit(cheap_spec(2)))
            with pytest.raises(QueueFull) as excinfo:
                service.submit(cheap_spec(3))
            assert excinfo.value.retry_after_s > 0
            gate.set()
            rows = await asyncio.gather(*futures)
            assert [r.spec.seed for r in rows] == [0, 1, 2]
            await service.drain()
            snapshot = service.metrics.snapshot()
            assert snapshot["serve.requests_admitted"]["value"] == 3
            assert snapshot["serve.requests_rejected_full"]["value"] == 1

        asyncio.run(main())

    def test_draining_rejects_new_submits(self, cheap_result):
        async def main():
            service = EvaluationService(
                ServerConfig(jobs=1, no_cache=True),
                evaluate_batch=fake_rows(cheap_result),
            )
            service.start()
            await service.drain()
            with pytest.raises(ShuttingDown):
                service.submit(cheap_spec())

        asyncio.run(main())


class TestPriorityAdmission:
    def test_batch_shed_at_watermark_interactive_admitted(self, cheap_result):
        """``batch`` hits its tighter bound (429) while ``interactive``
        still has queue headroom at the same instant."""

        async def main():
            gate = threading.Event()
            service = EvaluationService(
                ServerConfig(
                    jobs=1, max_batch=1, queue_limit=4,
                    batch_shed_fraction=0.5, no_cache=True,
                ),
                evaluate_batch=fake_rows(cheap_result, gate=gate),
            )
            assert service.config.batch_queue_limit == 2
            service.start()
            futures = [service.submit(cheap_spec(0))]
            await _poll(lambda: service._queue.qsize() == 0)
            # Two queued requests: the batch watermark is reached...
            futures.append(service.submit(cheap_spec(1)))
            futures.append(service.submit(cheap_spec(2), priority="batch"))
            with pytest.raises(QueueFull):
                service.submit(cheap_spec(3), priority="batch")
            # ...but interactive still gets in.
            futures.append(service.submit(cheap_spec(3)))
            gate.set()
            await asyncio.gather(*futures)
            await service.drain()
            snapshot = service.metrics.snapshot()
            assert snapshot["serve.requests_shed_batch"]["value"] == 1
            assert snapshot["serve.requests_admitted.batch"]["value"] == 1
            assert (
                snapshot["serve.requests_admitted.interactive"]["value"] == 3
            )
            assert snapshot["serve.request_seconds.batch"]["count"] == 1

        asyncio.run(main())

    def test_unknown_priority_rejected(self, cheap_result):
        async def main():
            service = EvaluationService(
                ServerConfig(jobs=1, no_cache=True),
                evaluate_batch=fake_rows(cheap_result),
            )
            service.start()
            with pytest.raises(ValueError):
                service.submit(cheap_spec(), priority="urgent")
            await service.drain()

        asyncio.run(main())

    def test_invalid_shed_fraction_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(batch_shed_fraction=0.0)
        with pytest.raises(ValueError):
            ServerConfig(batch_shed_fraction=1.5)

    def test_priority_header_404s_nothing_else(self, live_client):
        """Over HTTP: an unknown priority header is a 400 with its own
        error code; a valid one is accepted."""
        status, _, body = live_client.evaluate_response(
            cheap_spec(3), priority="batch"
        )
        assert status == 200
        bad_status, _, bad_body = live_client._request(
            "POST",
            "/v1/evaluate",
            json.dumps(cheap_spec(3).to_dict()).encode(),
            headers={"X-Repro-Priority": "urgent"},
        )
        assert bad_status == 400
        assert json.loads(bad_body)["error"]["code"] == "bad_priority"


class TestBatching:
    def test_concurrent_requests_coalesce(self, cheap_result):
        """Requests queued while the lone session is busy come out as one
        batch (max_batch permitting) once the session frees up."""

        async def main():
            gate = threading.Event()
            sizes = []
            service = EvaluationService(
                ServerConfig(
                    jobs=1, max_batch=8, linger_ms=20.0, no_cache=True
                ),
                evaluate_batch=fake_rows(cheap_result, record=sizes, gate=gate),
            )
            service.start()
            first = service.submit(cheap_spec(0))
            # Wait past the linger window: the first batch must be
            # dispatched (blocked on the gate) before the rest arrive.
            await _poll(lambda: len(service._inflight) == 1)
            rest = [service.submit(cheap_spec(i)) for i in range(1, 5)]
            gate.set()
            await asyncio.gather(first, *rest)
            assert sizes == [1, 4]
            await service.drain()
            snapshot = service.metrics.snapshot()
            assert snapshot["serve.batches"]["value"] == 2
            assert snapshot["serve.batch_size"]["max"] == 4

        asyncio.run(main())

    def test_max_batch_splits_backlog(self, cheap_result):
        async def main():
            gate = threading.Event()
            sizes = []
            service = EvaluationService(
                ServerConfig(
                    jobs=1, max_batch=3, linger_ms=20.0, queue_limit=16,
                    no_cache=True,
                ),
                evaluate_batch=fake_rows(cheap_result, record=sizes, gate=gate),
            )
            service.start()
            first = service.submit(cheap_spec(0))
            await _poll(lambda: len(service._inflight) == 1)
            rest = [service.submit(cheap_spec(i)) for i in range(1, 7)]
            gate.set()
            await asyncio.gather(first, *rest)
            assert sizes == [1, 3, 3]
            await service.drain()

        asyncio.run(main())


class TestDrain:
    def test_drain_answers_every_accepted_request(self, cheap_result):
        """Every admitted request resolves during drain — none dropped."""

        async def main():
            gate = threading.Event()
            service = EvaluationService(
                ServerConfig(
                    jobs=1, max_batch=2, queue_limit=16, no_cache=True
                ),
                evaluate_batch=fake_rows(cheap_result, gate=gate),
            )
            service.start()
            futures = [service.submit(cheap_spec(i)) for i in range(6)]
            drainer = asyncio.ensure_future(service.drain())
            gate.set()
            rows = await asyncio.gather(*futures)
            await drainer
            assert sorted(r.spec.seed for r in rows) == list(range(6))
            snapshot = service.metrics.snapshot()
            assert snapshot["serve.requests_completed"]["value"] == 6

        asyncio.run(main())


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    """A real server (real evaluator, disk cache in a temp dir)."""
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    config = ServerConfig(
        port=0, jobs=2, linger_ms=1.0, cache_dir=cache_dir
    )
    with ServerThread(config) as handle:
        yield handle


@pytest.fixture(scope="module")
def live_client(live_server):
    return ServeClient(port=live_server.port)


class TestHttpEvaluate:
    def test_response_is_byte_identical_to_cli_json(self, live_client):
        """The served body is exactly the RunResult JSON the CLI prints —
        asserted against both a fresh in-process run and the checked-in
        golden."""
        spec = golden_spec()
        body = live_client.evaluate_bytes(spec)
        expected = (api.run(spec).to_json(indent=2, sort_keys=True) + "\n").encode()
        assert body == expected
        golden = (GOLDEN_DIR / "serve_evaluate.json").read_bytes()
        assert body == golden

    def test_repeat_request_hits_cache(self, live_client):
        spec = golden_spec()
        first = live_client.evaluate_response(spec)
        second = live_client.evaluate_response(spec)
        assert first[0] == second[0] == 200
        assert second[1]["x-repro-cache"] == "hit"
        assert first[2] == second[2]

    def test_spec_envelope_accepted(self, live_client):
        payload = {"spec": golden_spec().to_dict()}
        status, headers, body = live_client.evaluate_response(payload)
        assert status == 200
        assert body == (GOLDEN_DIR / "serve_evaluate.json").read_bytes()

    def test_typed_client_round_trip(self, live_client):
        result = live_client.evaluate(cheap_spec())
        assert result.costs is not None


class TestHttpErrors:
    def test_malformed_json_is_400(self, live_client):
        status, _, body = live_client._request(
            "POST", "/v1/evaluate", b"{ not json"
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "bad_json"

    def test_invalid_spec_is_400(self, live_client):
        bad = golden_spec().to_dict()
        bad["mode"] = "quantum"
        status, _, body = live_client.evaluate_response(bad)
        assert status == 400
        assert json.loads(body)["error"]["code"] == "bad_spec"

    def test_unknown_fabric_is_400(self, live_client):
        bad = golden_spec().to_dict()
        bad["fabric"] = "warpdrive"
        status, _, body = live_client.evaluate_response(bad)
        assert status == 400
        envelope = json.loads(body)["error"]
        assert envelope["code"] == "bad_spec"
        assert "warpdrive" in envelope["message"]

    def test_non_object_body_is_400(self, live_client):
        status, _, body = live_client._request("POST", "/v1/evaluate", b"[1, 2]")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "bad_request"

    def test_unknown_route_is_404(self, live_client):
        status, _, body = live_client._request("GET", "/v2/evaluate")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not_found"

    def test_wrong_method_is_405_with_allow(self, live_client):
        status, headers, body = live_client._request("GET", "/v1/evaluate")
        assert status == 405
        assert headers["allow"] == "POST"
        status, headers, _ = live_client._request("POST", "/healthz", b"{}")
        assert status == 405
        assert headers["allow"] == "GET"

    def test_oversized_body_is_413(self, live_server):
        # The server answers 413 from the Content-Length header alone and
        # closes without reading the body, so speak raw sockets here (a
        # well-behaved HTTP client would die on the reset mid-upload).
        import socket

        from repro.serve import wire

        with socket.create_connection(
            ("127.0.0.1", live_server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /v1/evaluate HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {wire.MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
            head = sock.recv(4096).decode()
        assert head.startswith("HTTP/1.1 413 ")

    def test_client_raises_typed_error(self, live_client):
        bad = golden_spec().to_dict()
        bad["fabric"] = "warpdrive"
        with pytest.raises(ServeError) as excinfo:
            live_client.evaluate_bytes(bad)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_spec"


class TestHttpIntrospection:
    def test_healthz_shape(self, live_client):
        health = live_client.healthz()
        assert health["status"] == "ok"
        assert health["queue_limit"] == 64
        assert health["sessions"] == 2
        assert health["uptime_s"] >= 0

    def test_metrics_payload(self, live_client):
        # At least one evaluation has happened by now (fixture ordering
        # within the class does not matter — force one).
        live_client.evaluate_bytes(cheap_spec())
        payload = live_client.metrics()
        metrics = payload["metrics"]
        assert metrics["serve.requests_admitted"]["value"] >= 1
        assert metrics["serve.batch_size"]["count"] >= 1
        assert metrics["serve.request_seconds"]["count"] >= 1
        assert "serve.queue_depth" in metrics
        assert 0.0 <= metrics["serve.cache_hit_ratio"]["value"] <= 1.0
        assert payload["cache"]["hits"] + payload["cache"]["misses"] >= 1
        assert payload["disk_cache"]["entries"] >= 1
        assert payload["disk_cache"]["evictions"] == 0


class TestHttpBackpressureAndTimeout:
    def test_timeout_answers_504(self, cheap_result):
        config = ServerConfig(
            port=0, jobs=1, max_batch=1, request_timeout_s=0.05, no_cache=True
        )
        slow = fake_rows(cheap_result, delay_s=0.5)
        with ServerThread(config, evaluate_batch=slow) as handle:
            client = ServeClient(port=handle.port)
            with pytest.raises(ServeError) as excinfo:
                client.evaluate_bytes(cheap_spec())
            assert excinfo.value.status == 504
            assert excinfo.value.code == "timeout"
            metrics = client.metrics()["metrics"]
            assert metrics["serve.requests_timed_out"]["value"] == 1

    def test_overflow_answers_429_with_retry_after(self, cheap_result):
        gate = threading.Event()
        config = ServerConfig(
            port=0, jobs=1, max_batch=1, queue_limit=1, no_cache=True,
            retry_after_s=2.0,
        )
        with ServerThread(
            config, evaluate_batch=fake_rows(cheap_result, gate=gate)
        ) as handle:
            client = ServeClient(port=handle.port)
            statuses = []

            def post(seed):
                status, _, _ = client.evaluate_response(cheap_spec(seed))
                statuses.append(status)

            workers = [
                threading.Thread(target=post, args=(seed,)) for seed in (0, 1)
            ]
            workers[0].start()
            # Wait until request 0 is the in-flight batch...
            deadline = time.monotonic() + 10
            while client.healthz()["inflight_batches"] != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            workers[1].start()
            # ...and request 1 occupies the only queue slot.
            while client.healthz()["queue_depth"] != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            with pytest.raises(ServeError) as excinfo:
                client.evaluate_bytes(cheap_spec(2))
            assert excinfo.value.status == 429
            assert excinfo.value.code == "queue_full"
            assert excinfo.value.retry_after_s == 2.0
            gate.set()
            for worker in workers:
                worker.join(timeout=30)
            assert statuses == [200, 200]

    def test_stop_under_load_drains_accepted_requests(self, cheap_result):
        """A graceful stop while requests are queued answers all of them."""
        gate = threading.Event()
        config = ServerConfig(
            port=0, jobs=1, max_batch=2, queue_limit=16, no_cache=True
        )
        handle = ServerThread(
            config, evaluate_batch=fake_rows(cheap_result, gate=gate)
        ).start()
        client = ServeClient(port=handle.port)
        statuses = []

        def post(seed):
            status, _, body = client.evaluate_response(cheap_spec(seed))
            statuses.append((status, len(body)))

        workers = [
            threading.Thread(target=post, args=(seed,)) for seed in range(5)
        ]
        for worker in workers:
            worker.start()
        deadline = time.monotonic() + 10
        while True:
            admitted = client.metrics()["metrics"].get(
                "serve.requests_admitted", {"value": 0}
            )["value"]
            if admitted == 5:
                break
            assert time.monotonic() < deadline, "requests never all admitted"
            time.sleep(0.005)
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        gate.set()
        for worker in workers:
            worker.join(timeout=30)
        stopper.join(timeout=60)
        assert [s for s, _ in statuses] == [200] * 5
        assert all(size > 0 for _, size in statuses)
