"""Tests for multi-dimensional bucket algorithm schedules."""

import pytest

from repro.collectives.bucket import (
    bucket_all_gather_schedule,
    bucket_all_reduce_schedule,
    bucket_reduce_scatter_schedule,
    simultaneous_bucket_schedules,
)
from repro.topology.slices import Slice
from repro.topology.torus import Torus


@pytest.fixture
def rack():
    return Torus((4, 4, 4))


def slice3(rack):
    return Slice(name="Slice-3", rack=rack, offset=(0, 0, 0), shape=(4, 4, 1))


class TestReduceScatter:
    def test_phase_count(self, rack):
        schedule = bucket_reduce_scatter_schedule(slice3(rack), 1600.0)
        # Two stages of (4 - 1) steps each.
        assert len(schedule.phases) == 6

    def test_stage_buffer_shrinkage(self, rack):
        schedule = bucket_reduce_scatter_schedule(slice3(rack), 1600.0)
        # Stage 1 steps move N/4 per ring hop; stage 2 moves (N/4)/4.
        first_stage = schedule.phases[0].transfers[0].n_bytes
        second_stage = schedule.phases[3].transfers[0].n_bytes
        assert first_stage == pytest.approx(400.0)
        assert second_stage == pytest.approx(100.0)

    def test_all_rings_step_in_lockstep(self, rack):
        schedule = bucket_reduce_scatter_schedule(slice3(rack), 1600.0)
        # 4 rings x 4 chips per step in each stage.
        assert len(schedule.phases[0].transfers) == 16

    def test_full_span_stages_congestion_free(self, rack):
        schedule = bucket_reduce_scatter_schedule(slice3(rack), 1600.0)
        assert schedule.is_congestion_free

    def test_explicit_dim_order(self, rack):
        schedule = bucket_reduce_scatter_schedule(
            slice3(rack), 1600.0, dims=[1, 0]
        )
        assert "dims=[1, 0]" in schedule.name

    def test_optical_reconfig_per_stage(self, rack):
        schedule = bucket_reduce_scatter_schedule(
            slice3(rack), 1600.0, optical=True
        )
        assert schedule.reconfiguration_count == 2

    def test_extent_one_dim_rejected(self, rack):
        slc = slice3(rack)
        with pytest.raises(ValueError):
            bucket_reduce_scatter_schedule(slc, 100.0, dims=[2])

    def test_no_active_dims_rejected(self, rack):
        single = Slice(name="one", rack=rack, offset=(0, 0, 0), shape=(1, 1, 1))
        with pytest.raises(ValueError):
            bucket_reduce_scatter_schedule(single, 100.0)

    def test_negative_buffer_rejected(self, rack):
        with pytest.raises(ValueError):
            bucket_reduce_scatter_schedule(slice3(rack), -1.0)


class TestAllGather:
    def test_reverse_stage_order_and_growth(self, rack):
        schedule = bucket_all_gather_schedule(slice3(rack), 1600.0)
        assert len(schedule.phases) == 6
        # First AG stage handles the small shard, last the full buffer.
        first = schedule.phases[0].transfers[0].n_bytes
        last = schedule.phases[-1].transfers[0].n_bytes
        assert first < last

    def test_total_bytes_match_reduce_scatter(self, rack):
        rs = bucket_reduce_scatter_schedule(slice3(rack), 1600.0)
        ag = bucket_all_gather_schedule(slice3(rack), 1600.0)
        assert ag.total_bytes == pytest.approx(rs.total_bytes)


class TestAllReduce:
    def test_concatenates_rs_and_ag(self, rack):
        ar = bucket_all_reduce_schedule(slice3(rack), 1600.0)
        assert len(ar.phases) == 12

    def test_double_the_bytes(self, rack):
        rs = bucket_reduce_scatter_schedule(slice3(rack), 1600.0)
        ar = bucket_all_reduce_schedule(slice3(rack), 1600.0)
        assert ar.total_bytes == pytest.approx(2 * rs.total_bytes)


class TestSimultaneousBuckets:
    def test_one_schedule_per_dimension(self, rack):
        parts = simultaneous_bucket_schedules(slice3(rack), 1600.0)
        assert len(parts) == 2

    def test_parts_split_buffer(self, rack):
        parts = simultaneous_bucket_schedules(slice3(rack), 1600.0)
        # Each part's first stage moves (N/2)/4 per step.
        assert parts[0].phases[0].transfers[0].n_bytes == pytest.approx(200.0)

    def test_rotated_dimension_orders(self, rack):
        parts = simultaneous_bucket_schedules(slice3(rack), 1600.0)
        assert "dims=[0, 1]" in parts[0].name
        assert "dims=[1, 0]" in parts[1].name

    def test_parts_total_equals_full_pass(self, rack):
        slc = slice3(rack)
        parts = simultaneous_bucket_schedules(slc, 1600.0)
        full = bucket_reduce_scatter_schedule(slc, 1600.0)
        combined = sum(p.total_bytes for p in parts)
        assert combined == pytest.approx(full.total_bytes)
