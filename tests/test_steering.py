"""Tests for bandwidth steering (paper Section 4.1)."""

import pytest

from repro.collectives.primitives import Interconnect
from repro.core.steering import (
    effective_chip_bandwidth,
    plan_steering,
    static_allocation,
    steered_allocation,
)
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.topology.slices import Slice
from repro.topology.torus import Torus


@pytest.fixture
def rack():
    return Torus((4, 4, 4))


def make(rack, shape, name="s"):
    return Slice(name=name, rack=rack, offset=(0, 0, 0), shape=shape)


class TestAllocations:
    def test_static_splits_evenly(self):
        alloc = static_allocation(rack_ndim=4, total=16)
        assert alloc.per_dimension == {0: 4, 1: 4, 2: 4, 3: 4}
        assert alloc.stranded == 0

    def test_static_rounds_remainder(self):
        alloc = static_allocation(rack_ndim=3, total=16)
        assert sum(alloc.per_dimension.values()) == 16
        assert sorted(alloc.per_dimension.values()) == [5, 5, 6]

    def test_steered_single_dim_takes_all(self):
        alloc = steered_allocation([0], total=16)
        assert alloc.per_dimension == {0: 16}
        assert alloc.fraction(0) == 1.0

    def test_steered_two_dims_half_each(self):
        alloc = steered_allocation([0, 1], total=16)
        assert alloc.fraction(0) == pytest.approx(0.5)
        assert alloc.fraction(1) == pytest.approx(0.5)

    def test_overallocation_rejected(self):
        from repro.core.steering import WavelengthAllocation

        with pytest.raises(ValueError):
            WavelengthAllocation(per_dimension={0: 17}, total=16)

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ValueError):
            steered_allocation([0, 0])

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            steered_allocation([])

    def test_bandwidth_bytes(self):
        alloc = steered_allocation([2], total=16)
        assert alloc.bandwidth_bytes(2) == pytest.approx(CHIP_EGRESS_BYTES)
        assert alloc.bandwidth_bytes(0) == 0.0


class TestSteeringPlans:
    def test_slice1_steers_everything_into_x(self, rack):
        plan = plan_steering(make(rack, (4, 2, 1), "Slice-1"))
        assert plan.target_dims == (0,)
        assert plan.per_dimension_fraction[0] == 1.0
        assert plan.latency_s == pytest.approx(3.7e-6)

    def test_slice3_steers_z_into_xy(self, rack):
        plan = plan_steering(make(rack, (4, 4, 1), "Slice-3"))
        assert plan.target_dims == (0, 1)
        assert plan.per_dimension_fraction == {0: 0.5, 1: 0.5}

    def test_electrical_plan_is_static(self, rack):
        plan = plan_steering(
            make(rack, (4, 2, 1)), interconnect=Interconnect.ELECTRICAL
        )
        assert plan.switch_programs == 0
        assert plan.latency_s == 0.0
        assert plan.allocation.per_dimension == static_allocation(3).per_dimension

    def test_switch_programs_scale_with_slice(self, rack):
        small = plan_steering(make(rack, (4, 2, 1)))
        large = plan_steering(make(rack, (4, 4, 2)))
        assert small.switch_programs > 0
        # The larger slice has 4x the chips; with different steering
        # targets, the counts need not be proportional, just larger.
        assert large.switch_programs > small.switch_programs


class TestEffectiveBandwidth:
    def test_figure5c_slice1(self, rack):
        slc = make(rack, (4, 2, 1), "Slice-1")
        electrical = effective_chip_bandwidth(slc, Interconnect.ELECTRICAL)
        optical = effective_chip_bandwidth(slc, Interconnect.OPTICAL)
        assert electrical == pytest.approx(CHIP_EGRESS_BYTES / 3)
        assert optical == pytest.approx(CHIP_EGRESS_BYTES)

    def test_figure5c_slice3(self, rack):
        slc = make(rack, (4, 4, 1), "Slice-3")
        assert effective_chip_bandwidth(slc, Interconnect.ELECTRICAL) == (
            pytest.approx(2 * CHIP_EGRESS_BYTES / 3)
        )

    def test_custom_egress(self, rack):
        slc = make(rack, (4, 2, 1))
        assert effective_chip_bandwidth(
            slc, Interconnect.ELECTRICAL, chip_egress=300.0
        ) == pytest.approx(100.0)
