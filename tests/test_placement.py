"""Tests for slice placement policies."""

import pytest

from repro.topology.placement import (
    PlacementRequest,
    compactness_first_placement,
    score_placement,
    utilization_aware_placement,
)
from repro.topology.torus import Torus


@pytest.fixture
def rack():
    return Torus((4, 4, 4))


WORKLOAD = [
    PlacementRequest("a", 8),
    PlacementRequest("b", 8),
    PlacementRequest("c", 16),
    PlacementRequest("d", 32),
]


class TestRequests:
    def test_positive_chips_required(self):
        with pytest.raises(ValueError):
            PlacementRequest("x", 0)


class TestCompactnessFirst:
    def test_places_whole_workload(self, rack):
        outcome = compactness_first_placement(rack, WORKLOAD)
        assert set(outcome.placed) == {"a", "b", "c", "d"}
        assert not outcome.rejected

    def test_prefers_cubic_shapes(self, rack):
        outcome = compactness_first_placement(rack, [PlacementRequest("a", 8)])
        assert outcome.allocator.slices[0].shape == (2, 2, 2)

    def test_cubic_shapes_strand_everything(self, rack):
        outcome = compactness_first_placement(rack, [PlacementRequest("a", 8)])
        assert outcome.allocator.slices[0].electrical_utilization() == 0.0

    def test_rejects_when_full(self, rack):
        requests = [PlacementRequest("big", 64), PlacementRequest("late", 4)]
        outcome = compactness_first_placement(rack, requests)
        assert "late" in outcome.rejected


class TestUtilizationAware:
    def test_places_whole_workload(self, rack):
        outcome = utilization_aware_placement(rack, WORKLOAD)
        assert set(outcome.placed) == {"a", "b", "c", "d"}

    def test_prefers_full_span_shapes(self, rack):
        outcome = utilization_aware_placement(rack, [PlacementRequest("c", 16)])
        slc = outcome.allocator.slices[0]
        # A 16-chip slice can span two full dimensions (4x4x1 family).
        assert slc.electrical_utilization() == pytest.approx(2 / 3)

    def test_larger_requests_placed_first(self, rack):
        outcome = utilization_aware_placement(rack, WORKLOAD)
        assert outcome.allocator.slices[0].name == "d"

    def test_beats_compactness_on_utilization(self, rack):
        compact = score_placement(compactness_first_placement(rack, WORKLOAD))
        aware = score_placement(utilization_aware_placement(rack, WORKLOAD))
        assert aware.weighted_utilization > compact.weighted_utilization

    def test_even_smart_placement_strands_bandwidth(self, rack):
        # The paper's point: placement alone cannot reach 100 % — only
        # optics can; a 4x2x1-class tenant always strands 2/3.
        aware = score_placement(utilization_aware_placement(rack, WORKLOAD))
        assert aware.weighted_utilization < 1.0


class TestScore:
    def test_empty_outcome_scores_one(self, rack):
        outcome = utilization_aware_placement(rack, [])
        assert score_placement(outcome).weighted_utilization == 1.0
        assert score_placement(outcome).stranded_fraction == 0.0

    def test_weighting_by_chips(self, rack):
        outcome = utilization_aware_placement(
            rack, [PlacementRequest("d", 32), PlacementRequest("a", 8)]
        )
        score = score_placement(outcome)
        assert score.total_chips == 40
        expected = sum(
            s.chip_count * s.electrical_utilization()
            for s in outcome.allocator.slices
        ) / 40
        assert score.weighted_utilization == pytest.approx(expected)
