"""Tests for the batch execution engine (SweepPlan / run_many)."""

import json

import pytest

from repro.api import (
    FabricSession,
    ScenarioSpec,
    SliceSpec,
    SweepPlan,
    run_many,
)


def grid(fabrics=("electrical", "photonic"), buffers=(1 << 20, 1 << 26)):
    return [
        ScenarioSpec(
            fabric=fabric,
            slices=(SliceSpec("sweep", (4, 2, 1), (0, 0, 0)),),
            buffer_bytes=buffer,
            outputs=("costs",),
        )
        for fabric in fabrics
        for buffer in buffers
    ]


class TestSweepPlan:
    def test_size_and_expansion_order(self):
        plan = SweepPlan(
            fabrics=("electrical", "photonic"),
            slice_shapes=((4, 2, 1), (4, 4, 1)),
            buffer_bytes=(1, 2),
        )
        specs = plan.specs()
        assert plan.size == len(specs) == 8
        # Fabric-major, then shape, then buffer.
        assert [s.fabric for s in specs[:4]] == ["electrical"] * 4
        assert specs[0].buffer_bytes == 1
        assert specs[1].buffer_bytes == 2
        assert specs[0].slices[0].shape == (4, 2, 1)
        assert specs[2].slices[0].shape == (4, 4, 1)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepPlan(fabrics=())
        with pytest.raises(ValueError):
            SweepPlan(buffer_bytes=())

    def test_single_chip_shape_rejected(self):
        with pytest.raises(ValueError, match="single chip"):
            SweepPlan(slice_shapes=((1, 1, 1),))

    def test_to_dict_is_json_safe(self):
        plan = SweepPlan()
        json.dumps(plan.to_dict())


class TestRunMany:
    def test_rows_in_input_order(self):
        specs = grid()
        sweep = run_many(specs)
        assert [row.spec for row in sweep.runs] == specs
        assert sweep.unique_specs == len(specs)
        assert sweep.jobs == 1

    def test_duplicates_deduplicated(self):
        specs = grid()
        duplicated = specs + specs[:2]
        sweep = run_many(duplicated)
        assert len(sweep.runs) == len(duplicated)
        assert sweep.unique_specs == len(specs)
        # The folded duplicates carry their first occurrence's result.
        assert sweep.runs[-2].result is sweep.runs[0].result
        assert sweep.runs[-2].from_cache
        assert sweep.runs[-2].elapsed_s == 0.0

    def test_parallel_matches_serial_byte_for_byte(self):
        specs = grid()
        serial = run_many(specs, no_cache=True)
        parallel = run_many(specs, jobs=2, no_cache=True)
        assert parallel.jobs == 2
        serial_json = json.dumps(
            serial.to_dict(include_timing=False), sort_keys=True
        )
        parallel_json = json.dumps(
            parallel.to_dict(include_timing=False), sort_keys=True
        )
        assert serial_json == parallel_json

    def test_warm_cache_matches_serial_byte_for_byte(self, tmp_path):
        specs = grid()
        cold = run_many(specs, cache_dir=tmp_path)
        assert cold.cache_stats.misses == len(specs)
        warm = run_many(specs, cache_dir=tmp_path)
        assert warm.cache_stats.hits == len(specs)
        assert warm.cache_stats.misses == 0
        assert json.dumps(warm.to_dict(include_timing=False)) == json.dumps(
            cold.to_dict(include_timing=False)
        )

    def test_shared_session_is_serial_only(self):
        session = FabricSession()
        with pytest.raises(ValueError, match="session"):
            run_many(grid(), jobs=2, session=session)

    def test_shared_session_reuses_memoization(self):
        session = FabricSession()
        specs = grid()
        run_many(specs, session=session)
        rerun = run_many(specs, session=session)
        assert rerun.cache_stats.hits == len(specs)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_many(grid(), jobs=-1)

    def test_empty_spec_list(self):
        sweep = run_many([])
        assert sweep.runs == ()
        assert sweep.unique_specs == 0

    def test_worker_errors_propagate(self):
        bad = ScenarioSpec(
            fabric="no-such-fabric",
            slices=(SliceSpec("sweep", (4, 2, 1), (0, 0, 0)),),
            outputs=("costs",),
        )
        with pytest.raises(Exception):
            run_many([bad], jobs=2)

    def test_timing_fields_populated(self):
        sweep = run_many(grid())
        assert sweep.wall_clock_s > 0
        assert all(row.elapsed_s >= 0 for row in sweep.runs)
        fresh = [row for row in sweep.runs if not row.from_cache]
        assert fresh  # a cold sweep actually evaluated something

    def test_plan_through_engine(self, tmp_path):
        plan = SweepPlan(buffer_bytes=(1 << 20, 1 << 26))
        sweep = run_many(plan.specs(), cache_dir=tmp_path)
        assert len(sweep.runs) == plan.size
        for row in sweep.runs:
            assert row.result.costs is not None
