"""Tests for the alpha-beta-r cost model (paper Tables 1 and 2)."""

import pytest

from repro.collectives.cost_model import (
    CollectiveCost,
    CostParameters,
    bucket_all_gather,
    bucket_all_reduce,
    bucket_reduce_scatter,
    bucket_stage_costs,
    reduce_scatter_lower_bound,
    ring_all_gather,
    ring_reduce_scatter,
    simultaneous_bucket_beta_factor,
)


class TestRingCosts:
    def test_single_ring_alpha(self):
        assert ring_reduce_scatter(8).alpha_count == 7

    def test_single_ring_beta(self):
        assert ring_reduce_scatter(8).beta_factor == pytest.approx(7 / 8)

    def test_fractional_bandwidth_scales_beta(self):
        assert ring_reduce_scatter(8, 1 / 3).beta_factor == pytest.approx(
            3 * 7 / 8
        )

    def test_one_chip_ring_free(self):
        cost = ring_reduce_scatter(1)
        assert cost.alpha_count == 0
        assert cost.beta_factor == 0.0

    def test_all_gather_mirrors_reduce_scatter(self):
        assert ring_all_gather(8) == ring_reduce_scatter(8)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            ring_reduce_scatter(4, 0.0)
        with pytest.raises(ValueError):
            ring_reduce_scatter(4, 1.5)

    def test_invalid_ring_size(self):
        with pytest.raises(ValueError):
            ring_reduce_scatter(0)


class TestBucketCosts:
    def test_two_stage_alpha(self):
        assert bucket_reduce_scatter([4, 4]).alpha_count == 6

    def test_two_stage_beta_with_shrinkage(self):
        cost = bucket_reduce_scatter([4, 4])
        assert cost.beta_factor == pytest.approx(3 / 4 + (1 / 4) * (3 / 4))

    def test_stage_costs_match_table2_shape(self):
        stages = bucket_stage_costs([4, 4], bandwidth_fraction=1 / 3)
        assert len(stages) == 2
        assert stages[0].beta_factor == pytest.approx(3 * 3 / 4)        # N stage
        assert stages[1].beta_factor == pytest.approx(3 * 3 / 16)       # N/4 stage

    def test_reconfig_per_stage(self):
        cost = bucket_reduce_scatter([4, 4], reconfig_per_stage=True)
        assert cost.reconfig_count == 2

    def test_all_gather_reverses_order(self):
        rs = bucket_reduce_scatter([4, 2])
        ag = bucket_all_gather([4, 2])
        # The AG beta equals the RS of the reversed dims.
        assert ag.beta_factor == pytest.approx(
            bucket_reduce_scatter([2, 4]).beta_factor
        )
        assert ag.alpha_count == rs.alpha_count

    def test_all_reduce_is_rs_plus_ag(self):
        ar = bucket_all_reduce([4, 4])
        rs = bucket_reduce_scatter([4, 4])
        ag = bucket_all_gather([4, 4])
        assert ar.alpha_count == rs.alpha_count + ag.alpha_count
        assert ar.beta_factor == pytest.approx(rs.beta_factor + ag.beta_factor)

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            bucket_reduce_scatter([])
        with pytest.raises(ValueError):
            bucket_reduce_scatter([4, 1])


class TestPaperEquivalences:
    def test_lower_bound(self):
        assert reduce_scatter_lower_bound(8) == pytest.approx(7 / 8)
        assert reduce_scatter_lower_bound(1) == 0.0

    def test_full_bandwidth_single_ring_meets_lower_bound(self):
        assert ring_reduce_scatter(8, 1.0).beta_factor == pytest.approx(
            reduce_scatter_lower_bound(8)
        )

    def test_section41_redirection_equivalence(self):
        # Splitting N across D simultaneous rotated buckets at B/D costs
        # the same beta as one full-bandwidth bucket pass.
        for dims in ([4, 4], [4, 4, 4], [2, 4]):
            assert simultaneous_bucket_beta_factor(dims) == pytest.approx(
                bucket_reduce_scatter(dims, 1.0).beta_factor
            )

    def test_table1_three_x_ratio(self):
        electrical = ring_reduce_scatter(8, 1 / 3)
        optical = ring_reduce_scatter(8, 1.0).with_reconfig()
        assert electrical.beta_factor / optical.beta_factor == pytest.approx(3.0)
        assert optical.reconfig_count == 1

    def test_table2_one_point_five_ratio(self):
        electrical = bucket_reduce_scatter([4, 4], 1 / 3)
        optical = bucket_reduce_scatter([4, 4], 1 / 2, reconfig_per_stage=True)
        assert electrical.beta_factor / optical.beta_factor == pytest.approx(1.5)


class TestCostArithmetic:
    def test_addition(self):
        total = CollectiveCost(3, 0.5) + CollectiveCost(4, 0.25, 1)
        assert total == CollectiveCost(7, 0.75, 1)

    def test_with_reconfig(self):
        assert CollectiveCost(1, 0.1).with_reconfig(2).reconfig_count == 2

    def test_seconds_grounding(self):
        params = CostParameters(
            alpha_s=1e-6, chip_bandwidth_bytes=1e9, reconfig_s=4e-6
        )
        cost = CollectiveCost(alpha_count=3, beta_factor=0.5, reconfig_count=1)
        assert cost.seconds(1e6, params) == pytest.approx(3e-6 + 4e-6 + 5e-4)

    def test_negative_terms_rejected(self):
        with pytest.raises(ValueError):
            CollectiveCost(-1, 0.0)
        with pytest.raises(ValueError):
            CollectiveCost(0, -0.1)

    def test_labels(self):
        assert CollectiveCost(7, 0.875).alpha_label() == "7 x a"
        assert CollectiveCost(7, 0.875, 1).alpha_label() == "7 x a + r"
        assert CollectiveCost(3, 1.5, 2).alpha_label() == "3 x a + 2 x r"
        assert "0.875" in CollectiveCost(7, 0.875).beta_label()

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValueError):
            CollectiveCost(1, 1.0).beta_seconds(-1.0, CostParameters())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CostParameters(alpha_s=-1.0)
        with pytest.raises(ValueError):
            CostParameters(chip_bandwidth_bytes=0.0)
