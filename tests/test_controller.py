"""Tests for the rack fabric controller."""

import pytest

from repro.core.controller import FabricController
from repro.core.repair import RepairError
from repro.topology.slices import AllocationError


@pytest.fixture
def controller():
    c = FabricController()
    c.admit("Slice-3", (4, 4, 1), (0, 0, 0))
    c.admit("Slice-4", (4, 4, 2), (0, 0, 1))
    return c


class TestAdmission:
    def test_admit_allocates_and_steers(self, controller):
        state = controller.tenant("Slice-3")
        assert state.slc.chip_count == 16
        assert state.steering.target_dims == (0, 1)
        assert state.healthy

    def test_duplicate_name_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.admit("Slice-3", (1, 1, 1), (0, 0, 3))

    def test_overlap_rejected(self, controller):
        with pytest.raises(AllocationError):
            controller.admit("overlap", (1, 1, 1), (0, 0, 0))

    def test_evict_frees_chips(self, controller):
        spare_before = len(controller.spare_chips())
        controller.evict("Slice-3")
        assert "Slice-3" not in controller.tenants
        assert len(controller.spare_chips()) == spare_before + 16

    def test_unknown_tenant(self, controller):
        with pytest.raises(KeyError):
            controller.tenant("ghost")

    def test_tenants_sorted(self, controller):
        assert controller.tenants == ["Slice-3", "Slice-4"]


class TestCollectives:
    def test_prediction_positive(self, controller):
        assert controller.predict_reduce_scatter_s("Slice-3", 1 << 20) > 0

    def test_schedule_matches_slice(self, controller):
        schedule = controller.build_schedule("Slice-3", 1 << 20)
        assert schedule.transfer_count > 0
        assert schedule.is_congestion_free

    def test_steering_speedups_match_tables(self, controller):
        assert controller.steering_speedup("Slice-3") == pytest.approx(1.5)
        assert controller.steering_speedup("Slice-4") == pytest.approx(3.0)


class TestFailures:
    def test_failure_in_tenant_triggers_repair(self, controller):
        plan = controller.handle_failure((1, 2, 0))
        assert plan is not None
        assert controller.rack.torus.contains(plan.replacement)
        state = controller.tenant("Slice-3")
        assert not state.healthy
        assert state.repairs == [plan]

    def test_failure_on_free_chip_needs_no_repair(self, controller):
        plan = controller.handle_failure((0, 0, 3))
        assert plan is None
        assert controller.rack.is_failed((0, 0, 3))

    def test_spares_exclude_failed(self, controller):
        before = len(controller.spare_chips())
        controller.handle_failure((0, 0, 3))
        assert len(controller.spare_chips()) == before - 1

    def test_repair_exhaustion_raises(self):
        c = FabricController()
        c.admit("all", (4, 4, 4), (0, 0, 0))
        with pytest.raises(RepairError):
            c.handle_failure((0, 0, 0))


class TestStatus:
    def test_status_snapshot(self, controller):
        controller.handle_failure((1, 2, 0))
        status = controller.status()
        assert status["tenants"]["Slice-3"]["repairs"] == 1
        assert status["failed_chips"] == 1
        assert status["active_circuits"] >= 2
        assert status["spare_chips"] < 16
