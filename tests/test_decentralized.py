"""Tests for centralized vs decentralized circuit allocation (Section 5)."""

import numpy as np
import pytest

from repro.core.decentralized import (
    CentralizedController,
    CircuitRequest,
    DecentralizedAllocator,
    mean_setup_latency,
    success_rate,
)
from repro.core.wafer import LightpathWafer


def disjoint_requests(n):
    return [CircuitRequest(src=(0, i), dst=(3, i)) for i in range(n)]


class TestCentralized:
    def test_all_succeed_with_capacity(self):
        controller = CentralizedController(LightpathWafer())
        outcomes = controller.allocate_batch(disjoint_requests(4))
        assert success_rate(outcomes) == 1.0

    def test_latency_grows_linearly_with_queue(self):
        controller = CentralizedController(LightpathWafer())
        outcomes = controller.allocate_batch(disjoint_requests(8))
        latencies = [o.setup_latency_s for o in outcomes]
        gaps = np.diff(latencies)
        assert np.allclose(gaps, controller.service_time_s)

    def test_last_request_waits_for_whole_queue(self):
        controller = CentralizedController(LightpathWafer())
        outcomes = controller.allocate_batch(disjoint_requests(8))
        assert outcomes[-1].setup_latency_s == pytest.approx(
            8 * controller.service_time_s + controller.reconfig_s
        )

    def test_failure_on_exhausted_wafer(self):
        wafer = LightpathWafer(grid=(1, 2), bus_capacity=1)
        controller = CentralizedController(wafer)
        requests = [CircuitRequest((0, 0), (0, 1)), CircuitRequest((0, 0), (0, 1))]
        outcomes = controller.allocate_batch(requests)
        assert outcomes[0].success
        assert not outcomes[1].success


class TestDecentralized:
    def test_disjoint_requests_finish_in_one_round(self):
        allocator = DecentralizedAllocator(
            LightpathWafer(), rng=np.random.default_rng(0)
        )
        outcomes = allocator.allocate_batch(disjoint_requests(8))
        assert success_rate(outcomes) == 1.0
        assert all(o.attempts == 1 for o in outcomes)

    def test_latency_independent_of_batch_size(self):
        small = DecentralizedAllocator(
            LightpathWafer(), rng=np.random.default_rng(0)
        ).allocate_batch(disjoint_requests(2))
        large = DecentralizedAllocator(
            LightpathWafer(), rng=np.random.default_rng(0)
        ).allocate_batch(disjoint_requests(8))
        assert mean_setup_latency(small) == pytest.approx(
            mean_setup_latency(large)
        )

    def test_conflicts_force_retries(self):
        # A 1-track bus shared by overlapping routes guarantees conflicts.
        wafer = LightpathWafer(grid=(1, 3), bus_capacity=2)
        allocator = DecentralizedAllocator(wafer, rng=np.random.default_rng(1))
        requests = [
            CircuitRequest((0, 0), (0, 2)),
            CircuitRequest((0, 0), (0, 2)),
        ]
        outcomes = allocator.allocate_batch(requests)
        assert success_rate(outcomes) == 1.0
        assert max(o.attempts for o in outcomes) >= 1

    def test_gives_up_after_max_rounds(self):
        wafer = LightpathWafer(grid=(1, 2), bus_capacity=1)
        allocator = DecentralizedAllocator(
            wafer, max_rounds=4, rng=np.random.default_rng(0)
        )
        requests = [CircuitRequest((0, 0), (0, 1)) for _ in range(3)]
        outcomes = allocator.allocate_batch(requests)
        # Only one track exists; at most one request can ever win it.
        assert sum(1 for o in outcomes if o.success) <= 1
        failed = [o for o in outcomes if not o.success]
        assert all(o.attempts == 4 for o in failed)

    def test_respects_existing_allocations(self):
        wafer = LightpathWafer(grid=(1, 2), bus_capacity=1)
        wafer.bus((0, 0), (0, 1)).allocate("existing")
        allocator = DecentralizedAllocator(
            wafer, max_rounds=3, rng=np.random.default_rng(0)
        )
        outcomes = allocator.allocate_batch([CircuitRequest((0, 0), (0, 1))])
        assert not outcomes[0].success


class TestScalingComparison:
    def test_decentralized_wins_at_scale(self):
        # The Section 5 claim: the centralized controller's serialization
        # dominates at large batch sizes; decentralized stays flat.
        n = 24
        central = CentralizedController(LightpathWafer(grid=(4, 8))).allocate_batch(
            [CircuitRequest((0, i % 8), (3, (i * 3) % 8)) for i in range(n)]
        )
        decentral = DecentralizedAllocator(
            LightpathWafer(grid=(4, 8)), rng=np.random.default_rng(2)
        ).allocate_batch(
            [CircuitRequest((0, i % 8), (3, (i * 3) % 8)) for i in range(n)]
        )
        assert mean_setup_latency(decentral) < mean_setup_latency(central)


class TestHelpers:
    def test_mean_latency_empty(self):
        assert mean_setup_latency([]) == float("inf")

    def test_success_rate_empty(self):
        assert success_rate([]) == 1.0
