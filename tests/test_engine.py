"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventEngine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(2.0, lambda: fired.append("b"))
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.run()
        assert fired == ["a", "b"]

    def test_ties_preserve_scheduling_order(self):
        engine = EventEngine()
        fired = []
        for name in "abc":
            engine.schedule_at(1.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_after_uses_now(self):
        engine = EventEngine()
        times = []
        engine.schedule_at(5.0, lambda: engine.schedule_after(2.0, lambda: times.append(engine.now_s)))
        engine.run()
        assert times == [7.0]

    def test_past_scheduling_rejected(self):
        engine = EventEngine()
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventEngine().schedule_after(-1.0, lambda: None)


class TestExecution:
    def test_step_returns_false_when_empty(self):
        assert EventEngine().step() is False

    def test_clock_advances(self):
        engine = EventEngine()
        engine.schedule_at(3.0, lambda: None)
        engine.run()
        assert engine.now_s == 3.0

    def test_run_until_stops_early(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(10.0, lambda: fired.append(10))
        engine.run(until_s=5.0)
        assert fired == [1]
        assert engine.now_s == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_cancelled_events_skipped(self):
        engine = EventEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        engine.run()
        assert fired == []

    def test_processed_counter(self):
        engine = EventEngine()
        for i in range(5):
            engine.schedule_at(float(i), lambda: None)
        engine.run()
        assert engine.processed == 5

    def test_runaway_guard(self):
        engine = EventEngine(max_events=10)

        def reschedule():
            engine.schedule_after(1.0, reschedule)

        engine.schedule_after(1.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(until_s=100.0)

    def test_events_scheduled_during_run_fire(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(1.0, lambda: engine.schedule_at(2.0, lambda: fired.append(2)))
        engine.run()
        assert fired == [2]


class TestRunawayBound:
    """The bound is checked before the pop: the offending event is never
    silently consumed, and exactly ``max_events`` events run."""

    def test_exactly_max_events_allowed(self):
        engine = EventEngine(max_events=3)
        fired = []
        for i in range(3):
            engine.schedule_at(float(i), lambda i=i: fired.append(i))
        engine.run()
        assert fired == [0, 1, 2]

    def test_overflow_event_not_consumed(self):
        engine = EventEngine(max_events=2)
        fired = []
        for i in range(3):
            engine.schedule_at(float(i), lambda i=i: fired.append(i))
        with pytest.raises(SimulationError):
            engine.run()
        # The first two ran; the third is still queued, not dropped.
        assert fired == [0, 1]
        assert engine.pending == 1
        assert engine.next_event_time() == 2.0

    def test_clock_not_advanced_past_refused_event(self):
        engine = EventEngine(max_events=1)
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.run()
        assert engine.now_s == 1.0


class TestPendingCount:
    def test_pending_excludes_cancelled(self):
        engine = EventEngine()
        live = engine.schedule_at(1.0, lambda: None)
        doomed = engine.schedule_at(2.0, lambda: None)
        assert engine.pending == 2
        doomed.cancel()
        assert engine.pending == 1
        live.cancel()
        assert engine.pending == 0

    def test_cancelled_events_do_not_consume_budget(self):
        engine = EventEngine(max_events=2)
        for _ in range(5):
            engine.schedule_at(1.0, lambda: None).cancel()
        engine.schedule_at(2.0, lambda: None)
        engine.schedule_at(3.0, lambda: None)
        engine.run()
        assert engine.processed == 2
