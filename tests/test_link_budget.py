"""Tests for the end-to-end optical link budget."""

import pytest

from repro.phy.link_budget import LinkBudget
from repro.phy.waveguide import PathLoss, fiber, waveguide


def short_path(crossings=2):
    return PathLoss(
        segments=[waveguide(0.05, crossings=crossings)], mzi_hops=2
    )


class TestEvaluation:
    def test_short_path_feasible(self):
        report = LinkBudget().evaluate(short_path())
        assert report.feasible
        assert report.margin_db > 0

    def test_loss_accounts_crossings_and_mzis(self):
        report = LinkBudget().evaluate(short_path(crossings=4))
        expected = 0.05 * 10.0 + 4 * 0.25 + 2 * 0.5
        assert report.path_loss_db == pytest.approx(expected)

    def test_received_power_is_launch_minus_loss(self):
        budget = LinkBudget()
        report = budget.evaluate(short_path())
        assert report.received_power_dbm == pytest.approx(
            report.launch_power_dbm - report.path_loss_db
        )

    def test_launch_power_is_laser_minus_mrr(self):
        report = LinkBudget(laser_power_dbm=10.0).evaluate(short_path())
        assert report.launch_power_dbm == pytest.approx(10.0 - 3.0)

    def test_margin_is_received_minus_sensitivity(self):
        budget = LinkBudget(sensitivity_dbm=-11.0)
        report = budget.evaluate(short_path())
        assert report.margin_db == pytest.approx(report.received_power_dbm + 11.0)

    def test_very_lossy_path_infeasible(self):
        lossy = PathLoss(
            segments=[waveguide(2.0, crossings=40)], mzi_hops=10
        )
        report = LinkBudget().evaluate(lossy)
        assert not report.feasible
        assert report.margin_db < 0

    def test_fiber_path_feasible(self):
        # Rack-scale circuit: short waveguides at both ends + 3 m fiber.
        path = PathLoss(
            segments=[waveguide(0.05, crossings=1), fiber(3.0), waveguide(0.05, crossings=1)],
            mzi_hops=4,
        )
        assert LinkBudget().evaluate(path).feasible

    def test_detection_result_attached(self):
        report = LinkBudget().evaluate(short_path())
        assert 0.0 <= report.detection.ber <= 0.5


class TestMaxCrossings:
    def test_max_crossings_positive_for_short_path(self):
        budget = LinkBudget()
        assert budget.max_crossings(short_path(crossings=0), 0.25) > 10

    def test_max_crossings_zero_for_infeasible_base(self):
        lossy = PathLoss(segments=[waveguide(5.0)], mzi_hops=0)
        assert LinkBudget().max_crossings(lossy, 0.25) == 0

    def test_max_crossings_consistent_with_margin(self):
        budget = LinkBudget()
        base = short_path(crossings=0)
        n = budget.max_crossings(base, 0.25)
        report = budget.evaluate(base)
        assert n == int(report.margin_db // 0.25)

    def test_invalid_crossing_loss_rejected(self):
        with pytest.raises(ValueError):
            LinkBudget().max_crossings(short_path(), 0.0)

    def test_paper_routing_feasibility(self):
        # Section 3's point: at 0.25 dB/crossing a full-wafer traversal
        # (10 boundaries on a 4x8 grid) still closes the budget.
        wafer_diameter = PathLoss(
            segments=[waveguide(0.5, crossings=10)], mzi_hops=3
        )
        assert LinkBudget().evaluate(wafer_diameter).feasible
