"""Tests for on-demand optical circuits and their resource accounting."""

import pytest

from repro.core.circuits import CircuitError, CircuitManager
from repro.core.wafer import LightpathWafer


@pytest.fixture
def manager():
    return CircuitManager(wafer=LightpathWafer())


class TestEstablish:
    def test_basic_circuit(self, manager):
        circuit = manager.establish((0, 0), (0, 3))
        assert circuit.src == (0, 0)
        assert circuit.dst == (0, 3)
        assert circuit.rate_bytes == pytest.approx(28e9)
        assert circuit.setup_latency_s == pytest.approx(3.7e-6)
        assert circuit.link_report.feasible

    def test_self_circuit_rejected(self, manager):
        with pytest.raises(CircuitError):
            manager.establish((0, 0), (0, 0))

    def test_failed_tile_rejected(self, manager):
        manager.wafer.tile((0, 3)).fail()
        with pytest.raises(CircuitError):
            manager.establish((0, 0), (0, 3))

    def test_circuit_consumes_wavelength_and_lanes(self, manager):
        manager.establish((0, 0), (0, 3))
        assert manager.wafer.tile((0, 0)).egress_capacity() == 15
        assert manager.wafer.tile((0, 3)).serdes.free_lanes == 15

    def test_circuit_consumes_waveguides(self, manager):
        circuit = manager.establish((0, 0), (0, 3))
        for a, b in circuit.route.boundaries():
            assert manager.wafer.bus(a, b).free == 9999

    def test_wavelengths_exhaust(self, manager):
        for _ in range(16):
            manager.establish((0, 0), (0, 1))
        with pytest.raises(CircuitError):
            manager.establish((0, 0), (0, 1))

    def test_distinct_wavelengths_per_circuit(self, manager):
        a = manager.establish((0, 0), (0, 1))
        b = manager.establish((0, 0), (0, 2))
        assert a.wavelength_index != b.wavelength_index

    def test_budget_enforcement_optional(self):
        wafer = LightpathWafer()
        strict = CircuitManager(wafer=wafer)
        # Degrade the budget by tearing the laser power down via a custom
        # evaluator: easiest is a long synthetic wafer; here we just check
        # the flag wiring with enforce_budget=False on a working path.
        relaxed = CircuitManager(wafer=LightpathWafer(), enforce_budget=False)
        assert relaxed.establish((0, 0), (3, 7)).link_report is not None
        assert strict.establish((0, 0), (3, 7)).link_report.feasible


class TestEstablishMany:
    def test_all_or_nothing_success(self, manager):
        circuits = manager.establish_many([((0, 0), (0, 1)), ((1, 0), (1, 1))])
        assert len(circuits) == 2
        assert len(manager.circuits) == 2

    def test_all_or_nothing_rollback(self):
        wafer = LightpathWafer(grid=(1, 2), bus_capacity=1)
        manager = CircuitManager(wafer=wafer)
        with pytest.raises(CircuitError):
            manager.establish_many([((0, 0), (0, 1)), ((0, 0), (0, 1))])
        assert not manager.circuits
        assert wafer.bus((0, 0), (0, 1)).free == 1


class TestTeardown:
    def test_teardown_releases_everything(self, manager):
        circuit = manager.establish((0, 0), (0, 3))
        manager.teardown(circuit.circuit_id)
        assert not manager.circuits
        assert manager.wafer.tile((0, 0)).egress_capacity() == 16
        assert manager.wafer.tile((0, 3)).serdes.free_lanes == 16
        for a, b in circuit.route.boundaries():
            assert manager.wafer.bus(a, b).free == 10_000

    def test_teardown_unknown_raises(self, manager):
        with pytest.raises(KeyError):
            manager.teardown(99)

    def test_teardown_all(self, manager):
        manager.establish((0, 0), (0, 1))
        manager.establish((1, 0), (1, 1))
        assert manager.teardown_all() == 2
        assert not manager.circuits

    def test_wavelength_reusable_after_teardown(self, manager):
        first = manager.establish((0, 0), (0, 1))
        manager.teardown(first.circuit_id)
        again = manager.establish((0, 0), (0, 1))
        assert again.wavelength_index == first.wavelength_index


class TestQueries:
    def test_bandwidth_between_stacks_wavelengths(self, manager):
        manager.establish((0, 0), (0, 1))
        manager.establish((0, 0), (0, 1))
        assert manager.bandwidth_between((0, 0), (0, 1)) == pytest.approx(2 * 28e9)

    def test_circuits_between_filters(self, manager):
        manager.establish((0, 0), (0, 1))
        manager.establish((1, 0), (1, 1))
        assert len(manager.circuits_between((0, 0), (0, 1))) == 1

    def test_budget_health(self, manager):
        manager.establish((0, 0), (0, 1))
        assert manager.total_loss_budget_ok()
        assert manager.worst_margin_db() > 0

    def test_worst_margin_empty(self, manager):
        assert manager.worst_margin_db() == float("inf")
