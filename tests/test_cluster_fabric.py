"""Tests for the cluster-scale LIGHTPATH fabric (cross-rack circuits)."""

import pytest

from repro.core.circuits import CircuitError
from repro.core.cluster_fabric import LightpathClusterFabric


@pytest.fixture
def cluster():
    return LightpathClusterFabric(rack_count=3)


class TestStructure:
    def test_rack_count(self, cluster):
        assert cluster.rack_count == 3

    def test_trunks_join_consecutive_racks(self, cluster):
        assert cluster.trunk(0, 1).free > 0
        assert cluster.trunk(2, 1).free > 0
        with pytest.raises(KeyError):
            cluster.trunk(0, 2)

    def test_unknown_rack(self, cluster):
        with pytest.raises(KeyError):
            cluster.rack(9)

    def test_single_rack_cluster(self):
        single = LightpathClusterFabric(rack_count=1)
        assert single.free_inter_rack_fibers() == 0

    def test_invalid_rack_count(self):
        with pytest.raises(ValueError):
            LightpathClusterFabric(rack_count=0)


class TestIntraRackCircuits:
    def test_delegates_to_rack_fabric(self, cluster):
        circuit = cluster.establish((0, (0, 0, 0)), (0, (3, 3, 3)))
        assert not circuit.crosses_racks
        assert circuit.rack_path == (0,)
        assert len(cluster.rack(0).circuits) == 1

    def test_no_inter_rack_fibers_consumed(self, cluster):
        before = cluster.free_inter_rack_fibers()
        cluster.establish((1, (0, 0, 0)), (1, (1, 1, 1)))
        assert cluster.free_inter_rack_fibers() == before


class TestCrossRackCircuits:
    def test_adjacent_racks_one_fiber(self, cluster):
        circuit = cluster.establish((0, (0, 0, 0)), (1, (0, 0, 0)))
        assert circuit.crosses_racks
        assert circuit.rack_path == (0, 1)
        assert len(circuit.inter_rack_fibers) == 1
        assert len(circuit.rack_segments) == 2

    def test_distant_racks_chain_fibers(self, cluster):
        circuit = cluster.establish((0, (0, 0, 0)), (2, (1, 1, 1)))
        assert circuit.rack_path == (0, 1, 2)
        assert len(circuit.inter_rack_fibers) == 2

    def test_reverse_direction(self, cluster):
        circuit = cluster.establish((2, (0, 0, 0)), (0, (0, 0, 0)))
        assert circuit.rack_path == (2, 1, 0)

    def test_setup_latency_is_one_settle(self, cluster):
        circuit = cluster.establish((0, (0, 0, 0)), (1, (0, 0, 0)))
        assert circuit.setup_latency_s == pytest.approx(3.7e-6)

    def test_teardown_releases_fibers_and_segments(self, cluster):
        before = cluster.free_inter_rack_fibers()
        circuit = cluster.establish((0, (0, 0, 0)), (2, (0, 0, 0)))
        cluster.teardown(circuit.circuit_id)
        assert cluster.free_inter_rack_fibers() == before
        assert not cluster.circuits
        assert not cluster.rack(0).circuits

    def test_failed_endpoint_rejected(self, cluster):
        cluster.rack(1).rack.fail_chip((0, 0, 0))
        with pytest.raises(CircuitError):
            cluster.establish((0, (0, 0, 0)), (1, (0, 0, 0)))

    def test_unknown_rack_rejected(self, cluster):
        with pytest.raises(CircuitError):
            cluster.establish((0, (0, 0, 0)), (7, (0, 0, 0)))

    def test_fiber_exhaustion(self):
        tight = LightpathClusterFabric(rack_count=2, fibers_per_trunk=1)
        tight.establish((0, (0, 0, 0)), (1, (0, 0, 0)))
        with pytest.raises(CircuitError):
            tight.establish((0, (1, 0, 0)), (1, (1, 0, 0)))


class TestCrossRackRepair:
    def test_repair_builds_bidirectional_circuits(self, cluster):
        failed = (0, (0, 0, 0))
        neighbors = [(0, (1, 0, 0)), (0, (0, 1, 0))]
        spare = (1, (0, 0, 0))
        circuits = cluster.cross_rack_repair(failed, neighbors, spare)
        assert len(circuits) == 4
        assert cluster.rack(0).rack.is_failed((0, 0, 0))
        assert all(c.crosses_racks for c in circuits)

    def test_repair_rolls_back_on_failure(self):
        tight = LightpathClusterFabric(rack_count=2, fibers_per_trunk=2)
        failed = (0, (0, 0, 0))
        neighbors = [(0, (1, 0, 0)), (0, (0, 1, 0))]
        spare = (1, (0, 0, 0))
        with pytest.raises(CircuitError):
            tight.cross_rack_repair(failed, neighbors, spare)
        assert not tight.circuits
        assert tight.free_inter_rack_fibers() == 2
