"""Tests for the circuit-switched host transport (Section 1 challenge)."""

import pytest

from repro.core.transport import (
    CircuitTransport,
    GreedyLongestQueue,
    Message,
    ThresholdBatching,
)

RATE = 100.0  # bytes/s, keeps arithmetic readable
R = 1.0       # reconfiguration cost, seconds


def transport(policy=None, reconfig=R):
    return CircuitTransport(
        policy or GreedyLongestQueue(), rate_bytes=RATE, reconfig_s=reconfig
    )


class TestBasics:
    def test_single_message(self):
        stats = transport().run([Message(0.0, "b", 100.0)])
        assert stats.reconfigurations == 1
        assert stats.makespan_s == pytest.approx(R + 1.0)
        assert stats.delivered[0].latency_s == pytest.approx(R + 1.0)

    def test_same_destination_amortizes_reconfig(self):
        messages = [Message(0.0, "b", 100.0) for _ in range(5)]
        stats = transport().run(messages)
        assert stats.reconfigurations == 1
        assert stats.makespan_s == pytest.approx(R + 5.0)

    def test_alternating_destinations_with_greedy(self):
        messages = [
            Message(0.0, "b", 100.0),
            Message(0.0, "c", 100.0),
        ]
        stats = transport().run(messages)
        assert stats.reconfigurations == 2

    def test_idle_gap_waits_for_arrival(self):
        # The circuit stays pointed at "b" across the idle gap, so the
        # second message needs no reconfiguration.
        messages = [Message(0.0, "b", 100.0), Message(10.0, "b", 100.0)]
        stats = transport().run(messages)
        assert stats.makespan_s == pytest.approx(11.0)
        assert stats.reconfigurations == 1

    def test_stats_accounting(self):
        messages = [Message(0.0, "b", 100.0), Message(0.0, "c", 200.0)]
        stats = transport().run(messages)
        assert stats.busy_s == pytest.approx(3.0)
        assert stats.reconfig_s == pytest.approx(2 * R)
        assert 0.0 < stats.reconfig_overhead < 1.0

    def test_empty_run(self):
        stats = transport().run([])
        assert stats.makespan_s == 0.0
        assert stats.mean_latency_s == 0.0

    def test_message_validation(self):
        with pytest.raises(ValueError):
            Message(0.0, "b", 0.0)
        with pytest.raises(ValueError):
            Message(-1.0, "b", 1.0)

    def test_transport_validation(self):
        with pytest.raises(ValueError):
            CircuitTransport(GreedyLongestQueue(), rate_bytes=0.0)
        with pytest.raises(ValueError):
            CircuitTransport(GreedyLongestQueue(), reconfig_s=-1.0)


class TestPolicies:
    def interleaved(self, n=8):
        """n small messages to 'b' and n to 'c', all at t=0."""
        messages = []
        for i in range(n):
            messages.append(Message(0.0, "b", 100.0))
            messages.append(Message(0.0, "c", 100.0))
        return messages

    def test_batching_reconfigures_less_than_greedy(self):
        messages = self.interleaved()
        greedy = transport(GreedyLongestQueue()).run(messages)
        batched = transport(ThresholdBatching(hysteresis=100.0)).run(messages)
        assert batched.reconfigurations < greedy.reconfigurations
        assert batched.reconfigurations == 2  # drain b fully, then c

    def test_batching_improves_makespan_under_costly_r(self):
        messages = self.interleaved()
        greedy = transport(GreedyLongestQueue()).run(messages)
        batched = transport(ThresholdBatching(hysteresis=100.0)).run(messages)
        assert batched.makespan_s < greedy.makespan_s

    def test_greedy_serves_deepest_queue_first(self):
        messages = [Message(0.0, "b", 100.0), Message(0.0, "c", 300.0)]
        stats = transport(GreedyLongestQueue()).run(messages)
        first = stats.delivered[0]
        assert first.message.dst == "c"

    def test_hysteresis_validation(self):
        with pytest.raises(ValueError):
            ThresholdBatching(hysteresis=0.5)

    def test_hysteresis_one_is_sticky_on_ties(self):
        messages = self.interleaved(4)
        greedy = transport(GreedyLongestQueue()).run(messages)
        sticky = transport(ThresholdBatching(hysteresis=1.0)).run(messages)
        # hysteresis=1.0 only switches when another queue strictly
        # exceeds the in-service one, so it never thrashes more than
        # greedy (which also re-points on ties).
        assert sticky.reconfigurations <= greedy.reconfigurations

    def test_all_messages_delivered_once(self):
        messages = self.interleaved(5)
        stats = transport(ThresholdBatching()).run(messages)
        assert len(stats.delivered) == len(messages)

    def test_latency_percentile_ordering(self):
        messages = self.interleaved(10)
        stats = transport().run(messages)
        assert stats.p99_latency_s >= stats.mean_latency_s
