"""Tests for waveguide routing across the wafer grid."""

import pytest

from repro.core.routing import RouteExhausted, WaferRouter, WaveguideRoute
from repro.core.wafer import LightpathWafer


@pytest.fixture
def router():
    return WaferRouter(LightpathWafer())


class TestWaveguideRoute:
    def test_crossings_count(self):
        route = WaveguideRoute(tiles=((0, 0), (0, 1), (0, 2)))
        assert route.boundary_crossings == 2

    def test_straight_route_no_turns(self):
        route = WaveguideRoute(tiles=((0, 0), (0, 1), (0, 2)))
        assert route.turns == 0
        assert route.mzi_hops == 2  # inject + extract

    def test_l_route_one_turn(self):
        route = WaveguideRoute(tiles=((0, 0), (0, 1), (1, 1)))
        assert route.turns == 1
        assert route.mzi_hops == 3

    def test_single_tile_route(self):
        route = WaveguideRoute(tiles=((0, 0),))
        assert route.boundary_crossings == 0
        assert route.mzi_hops == 0

    def test_non_adjacent_hops_rejected(self):
        with pytest.raises(ValueError):
            WaveguideRoute(tiles=((0, 0), (1, 1)))

    def test_boundaries(self):
        route = WaveguideRoute(tiles=((0, 0), (0, 1)))
        assert route.boundaries() == [((0, 0), (0, 1))]


class TestDimensionOrderRouting:
    def test_row_first(self, router):
        route = router.dimension_order_route((0, 0), (2, 3))
        assert route.tiles[0] == (0, 0)
        assert route.tiles[-1] == (2, 3)
        assert route.tiles[1] == (1, 0)  # rows first

    def test_col_first(self, router):
        route = router.dimension_order_route((0, 0), (2, 3), row_first=False)
        assert route.tiles[1] == (0, 1)

    def test_route_length_is_manhattan(self, router):
        route = router.dimension_order_route((0, 0), (3, 7))
        assert route.boundary_crossings == 10

    def test_same_tile(self, router):
        route = router.dimension_order_route((1, 1), (1, 1))
        assert route.tiles == ((1, 1),)


class TestBfsRouting:
    def test_bfs_matches_manhattan_when_free(self, router):
        route = router.bfs_route((0, 0), (3, 7))
        assert route.boundary_crossings == 10

    def test_bfs_detours_around_full_bus(self):
        wafer = LightpathWafer(grid=(2, 3), bus_capacity=1)
        router = WaferRouter(wafer)
        wafer.bus((0, 0), (0, 1)).allocate("blocker")
        route = router.bfs_route((0, 0), (0, 2))
        assert route.tiles[1] == (1, 0)  # detours through the second row
        assert route.boundary_crossings == 4

    def test_bfs_exhaustion(self):
        wafer = LightpathWafer(grid=(1, 3), bus_capacity=1)
        router = WaferRouter(wafer)
        wafer.bus((0, 0), (0, 1)).allocate("blocker")
        with pytest.raises(RouteExhausted):
            router.bfs_route((0, 0), (0, 2))

    def test_route_prefers_dimension_order(self, router):
        route = router.route((0, 0), (2, 2))
        assert route.tiles == router.dimension_order_route((0, 0), (2, 2)).tiles


class TestAllocation:
    def test_allocate_claims_every_boundary(self, router):
        route = router.route((0, 0), (0, 3))
        tracks = router.allocate(route, "c1")
        assert len(tracks) == 3
        for a, b in route.boundaries():
            assert router.wafer.bus(a, b).free == 9999

    def test_release_returns_tracks(self, router):
        route = router.route((0, 0), (0, 3))
        router.allocate(route, "c1")
        router.release(route, "c1")
        for a, b in route.boundaries():
            assert router.wafer.bus(a, b).free == 10_000

    def test_allocation_rolls_back_on_failure(self):
        wafer = LightpathWafer(grid=(1, 3), bus_capacity=1)
        router = WaferRouter(wafer)
        wafer.bus((0, 1), (0, 2)).allocate("blocker")
        route = router.dimension_order_route((0, 0), (0, 2))
        with pytest.raises(RouteExhausted):
            router.allocate(route, "c1")
        assert wafer.bus((0, 0), (0, 1)).free == 1  # rolled back

    def test_utilization(self, router):
        assert router.utilization() == 0.0
        route = router.route((0, 0), (0, 1))
        router.allocate(route, "c")
        assert router.utilization() > 0.0


class TestPhotonicFaultAwareness:
    def test_chip_failure_does_not_block_transit(self):
        # The interconnect layer lives under the stacked chips: a dead
        # TPU's tile still routes transit light (the Section 4.2 premise).
        wafer = LightpathWafer()
        wafer.tile((0, 1)).fail()
        router = WaferRouter(wafer)
        route = router.route((0, 0), (0, 2))
        assert route.tiles == ((0, 0), (0, 1), (0, 2))

    def test_failed_exit_switch_blocks_hop(self):
        from repro.core.tile import Direction

        wafer = LightpathWafer()
        wafer.tile((0, 0)).switches[Direction.EAST].failed = True
        router = WaferRouter(wafer)
        assert not router.hop_usable((0, 0), (0, 1))
        # Route detours through the second row.
        route = router.route((0, 0), (0, 2))
        assert (0, 1) not in route.tiles or route.tiles[1] != (0, 1)
        assert route.tiles[1] == (1, 0)

    def test_failed_entry_switch_blocks_whole_boundary(self):
        from repro.core.tile import Direction

        wafer = LightpathWafer()
        wafer.tile((0, 1)).switches[Direction.WEST].failed = True
        router = WaferRouter(wafer)
        # The west-facing switch terminates that boundary in both
        # directions; the tile's other boundaries stay usable.
        assert not router.hop_usable((0, 0), (0, 1))
        assert not router.hop_usable((0, 1), (0, 0))
        assert router.hop_usable((0, 1), (0, 2))
        assert router.hop_usable((0, 1), (1, 1))

    def test_fully_cut_wafer_exhausts(self):
        from repro.core.tile import Direction

        wafer = LightpathWafer(grid=(1, 3))
        wafer.tile((0, 1)).switches[Direction.WEST].failed = True
        wafer.tile((0, 1)).switches[Direction.EAST].failed = True
        router = WaferRouter(wafer)
        with pytest.raises(RouteExhausted):
            router.route((0, 0), (0, 2))
