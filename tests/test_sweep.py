"""Tests for the parameter-sweep helpers."""

import pytest

from repro.analysis.sweep import buffer_size_sweep, slice_shape_sweep
from repro.topology.slices import Slice
from repro.topology.torus import Torus


def slice1():
    return Slice(
        name="Slice-1", rack=Torus((4, 4, 4)), offset=(0, 0, 0), shape=(4, 2, 1)
    )


class TestBufferSweep:
    def test_point_per_size(self):
        points = buffer_size_sweep(slice1(), [1 << 10, 1 << 20, 1 << 30])
        assert len(points) == 3
        assert [p.n_bytes for p in points] == [1 << 10, 1 << 20, 1 << 30]

    def test_crossover_present(self):
        points = buffer_size_sweep(slice1(), [1 << 10, 1 << 30])
        assert not points[0].optics_wins
        assert points[-1].optics_wins

    def test_speedup_approaches_three(self):
        point = buffer_size_sweep(slice1(), [1 << 34])[0]
        assert point.speedup == pytest.approx(3.0, rel=0.01)

    def test_times_monotone_in_size(self):
        points = buffer_size_sweep(slice1(), [1 << 10, 1 << 20, 1 << 30])
        electrical = [p.electrical_s for p in points]
        assert electrical == sorted(electrical)

    def test_validation(self):
        with pytest.raises(ValueError):
            buffer_size_sweep(slice1(), [])
        with pytest.raises(ValueError):
            buffer_size_sweep(slice1(), [0])


class TestShapeSweep:
    def test_known_advantages(self):
        points = slice_shape_sweep([(4, 2, 1), (4, 4, 1), (4, 4, 4)])
        by_shape = {p.shape: p for p in points}
        assert by_shape[(4, 2, 1)].beta_advantage == pytest.approx(3.0)
        assert by_shape[(4, 4, 1)].beta_advantage == pytest.approx(1.5)
        assert by_shape[(4, 4, 4)].beta_advantage == pytest.approx(1.0)

    def test_utilization_matches_slice_rule(self):
        points = slice_shape_sweep([(4, 2, 1)])
        assert points[0].electrical_utilization == pytest.approx(1 / 3)

    def test_single_chip_shapes_reported_as_skipped_rows(self):
        points = slice_shape_sweep([(1, 1, 1), (4, 1, 1)])
        assert [p.shape for p in points] == [(1, 1, 1), (4, 1, 1)]
        assert points[0].skipped is not None
        assert "single-chip" in points[0].skipped
        assert points[0].chips == 1
        assert points[1].skipped is None

    def test_all_skipped_sweep_raises(self):
        with pytest.raises(ValueError, match="single-chip"):
            slice_shape_sweep([(1, 1, 1)])
        with pytest.raises(ValueError):
            slice_shape_sweep([])

    def test_chip_counts(self):
        points = slice_shape_sweep([(4, 4, 2)])
        assert points[0].chips == 32
