"""Tests for the generic N-dimensional torus."""

import pytest

from repro.topology.torus import Link, Torus


class TestConstruction:
    def test_node_count(self):
        assert Torus((4, 4, 4)).node_count == 64

    def test_nodes_enumeration(self):
        nodes = list(Torus((2, 3)).nodes())
        assert len(nodes) == 6
        assert nodes[0] == (0, 0)
        assert nodes[-1] == (1, 2)

    def test_contains(self):
        t = Torus((4, 4))
        assert t.contains((3, 3))
        assert not t.contains((4, 0))
        assert not t.contains((0,))

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            Torus(())

    def test_zero_extent_rejected(self):
        with pytest.raises(ValueError):
            Torus((4, 0)).node_count


class TestAdjacency:
    def test_shift_wraps(self):
        t = Torus((4, 4))
        assert t.shift((3, 0), 0, 1) == (0, 0)
        assert t.shift((0, 0), 0, -1) == (3, 0)

    def test_shift_invalid_dim(self):
        with pytest.raises(ValueError):
            Torus((4,)).shift((0,), 1, 1)

    def test_neighbors_in_3d(self):
        t = Torus((4, 4, 4))
        assert len(t.neighbors((0, 0, 0))) == 6

    def test_neighbors_dedup_extent_two(self):
        t = Torus((2, 4))
        # +1 and -1 along the extent-2 dim reach the same node.
        assert len(t.neighbors((0, 0))) == 3

    def test_neighbors_skip_extent_one(self):
        t = Torus((4, 1))
        assert len(t.neighbors((0, 0))) == 2

    def test_link_count_4x4x4(self):
        # 64 nodes x 3 dims x 2 directions.
        assert Torus((4, 4, 4)).link_count() == 384

    def test_link_count_extent_two(self):
        # 2x3: dim0 has 3 cables (x2 dir) = 6; dim1 has 2 rows x 3 links x 2 = 12.
        assert Torus((2, 3)).link_count() == 18

    def test_links_are_unique(self):
        links = list(Torus((3, 3)).links())
        assert len(links) == len(set(links))

    def test_links_are_valid_neighbor_pairs(self):
        t = Torus((3, 4))
        for link in t.links():
            assert link.dst in t.neighbors(link.src)


class TestLink:
    def test_reverse(self):
        link = Link((0, 0), (0, 1))
        assert link.reverse == Link((0, 1), (0, 0))

    def test_dimension_of_plain_hop(self):
        assert Link((0, 0), (0, 1)).dimension((4, 4)) == 1

    def test_dimension_of_wrap_hop(self):
        assert Link((3, 0), (0, 0)).dimension((4, 4)) == 0

    def test_dimension_rejects_diagonal(self):
        with pytest.raises(ValueError):
            Link((0, 0), (1, 1)).dimension((4, 4))

    def test_dimension_rejects_long_jump(self):
        with pytest.raises(ValueError):
            Link((0, 0), (2, 0)).dimension((5, 5))


class TestRings:
    def test_ring_visits_full_dimension(self):
        t = Torus((4, 4))
        ring = t.ring(0, (1, 2))
        assert len(ring) == 4
        assert ring[0] == (1, 2)
        assert {n[1] for n in ring} == {2}

    def test_ring_links_close_the_loop(self):
        t = Torus((4,))
        ring = t.ring(0, (0,))
        links = t.ring_links(ring)
        assert len(links) == 4
        assert links[-1] == Link((3,), (0,))

    def test_two_node_ring_uses_both_directions(self):
        t = Torus((2,))
        links = t.ring_links(t.ring(0, (0,)))
        assert set(links) == {Link((0,), (1,)), Link((1,), (0,))}

    def test_single_node_ring_no_links(self):
        t = Torus((1, 4))
        assert t.ring_links(t.ring(0, (0, 0))) == []


class TestPaths:
    def test_shortest_path_trivial(self):
        t = Torus((4, 4))
        assert t.shortest_path((1, 1), (1, 1)) == [(1, 1)]

    def test_shortest_path_length(self):
        t = Torus((4, 4, 4))
        path = t.shortest_path((0, 0, 0), (2, 2, 0))
        assert len(path) == 5  # 4 hops

    def test_shortest_path_uses_wrap(self):
        t = Torus((4,))
        path = t.shortest_path((0,), (3,))
        assert len(path) == 2  # wrap link, 1 hop

    def test_forbidden_nodes_respected(self):
        t = Torus((4, 1))
        path = t.shortest_path((0, 0), (2, 0), forbidden_nodes={(1, 0)})
        assert path == [(0, 0), (3, 0), (2, 0)]

    def test_forbidden_links_respected(self):
        t = Torus((4,))
        path = t.shortest_path(
            (0,), (1,), forbidden_links={Link((0,), (1,))}
        )
        assert path == [(0,), (3,), (2,), (1,)]

    def test_unreachable_returns_none(self):
        t = Torus((4, 1))
        blocked = {(1, 0), (3, 0)}
        assert t.shortest_path((0, 0), (2, 0), forbidden_nodes=blocked) is None

    def test_all_paths_within_budget(self):
        t = Torus((3, 3))
        paths = list(t.all_paths((0, 0), (1, 1), max_hops=2))
        assert len(paths) == 2
        for path in paths:
            assert path[0] == (0, 0) and path[-1] == (1, 1)

    def test_all_paths_simple(self):
        t = Torus((3, 3))
        for path in t.all_paths((0, 0), (2, 2), max_hops=4):
            assert len(path) == len(set(path))

    def test_path_links(self):
        t = Torus((4,))
        assert t.path_links([(0,), (1,), (2,)]) == [
            Link((0,), (1,)),
            Link((1,), (2,)),
        ]
