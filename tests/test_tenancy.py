"""Tests for repro.tenancy: workload, cluster state, policies, API."""

import json

import pytest

from repro.api import (
    RunResult,
    ScenarioSpec,
    TenancyPlan,
    UnsupportedOutput,
    run,
)
from repro.cli import main
from repro.tenancy import (
    JOB_CATALOG,
    MIN_DURATION_S,
    PLACEMENT_POLICY_NAMES,
    PRIORITIES,
    ClusterState,
    TenancyConfig,
    TenancySimulator,
    generate_jobs,
    make_placement_policy,
    simulate_tenancy,
)
from repro.tenancy.policies import CATALOG_SHAPES, SteerOnArrivalPolicy
from repro.sim.engine import SimulationError
from repro.topology import (
    NoContiguousPlacementError,
    ShapeTooLargeError,
    SliceOverlapError,
    WavelengthBudgetError,
)

# Small, churn-dense config: a quarter day over two racks at a rate that
# keeps the queues busy, in about a second of wall clock per run.
SHORT = TenancyConfig(
    racks=2,
    horizon_s=6 * 3600.0,
    arrivals_per_day=2400.0,
    seed=3,
    series_points=6,
)


class TestWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            generate_jobs(86400.0, 100.0, profile="bogus")
        with pytest.raises(ValueError):
            generate_jobs(0.0, 100.0)
        with pytest.raises(ValueError):
            generate_jobs(86400.0, 0.0)
        with pytest.raises(ValueError):
            generate_jobs(86400.0, 100.0, mean_duration_s=MIN_DURATION_S)

    @pytest.mark.parametrize("profile", ["poisson", "burst", "trace"])
    def test_jobs_are_well_formed(self, profile):
        jobs = generate_jobs(86400.0, 500.0, profile=profile, seed=1)
        assert len(jobs) > 300
        catalog = {shape for shape, _ in JOB_CATALOG}
        last = 0.0
        for job in jobs:
            assert 0.0 < job.arrival_s <= 86400.0
            assert job.arrival_s >= last
            last = job.arrival_s
            assert job.duration_s >= MIN_DURATION_S
            assert job.shape in catalog
            assert job.priority in PRIORITIES
        assert jobs[0].name == "job-0"
        assert jobs[3].chips == (
            jobs[3].shape[0] * jobs[3].shape[1] * jobs[3].shape[2]
        )

    def test_deterministic_per_seed(self):
        assert generate_jobs(86400.0, 300.0, seed=5) == generate_jobs(
            86400.0, 300.0, seed=5
        )
        assert generate_jobs(86400.0, 300.0, seed=5) != generate_jobs(
            86400.0, 300.0, seed=6
        )

    def test_trace_profile_is_evenly_spaced(self):
        jobs = generate_jobs(3600.0, 8640.0, profile="trace")
        gaps = {
            round(b.arrival_s - a.arrival_s, 9)
            for a, b in zip(jobs, jobs[1:])
        }
        assert gaps == {10.0}

    def test_burst_profile_preserves_mean_rate(self):
        # Time-rescaling redistributes load without changing the mean:
        # a long horizon lands within a few percent of the offered rate.
        jobs = generate_jobs(30 * 86400.0, 1000.0, profile="burst", seed=2)
        assert 30_000 * 0.93 < len(jobs) < 30_000 * 1.07


class TestClusterState:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterState(racks=0)
        with pytest.raises(ValueError):
            ClusterState(steer_circuits=-1)

    def test_allocate_release_cycle(self):
        cluster = ClusterState(racks=2)
        a = cluster.allocate_box("a", (4, 4, 1), 0, (0, 0, 0))
        assert a.contiguous and a.chip_count == 16 and a.offset == (0, 0, 0)
        assert cluster.free_chips(0) == 48 and cluster.free_chips(1) == 64
        assert cluster.occupied_chips() == 16
        cluster.check_consistent()
        released = cluster.release("a")
        assert released == a
        assert cluster.total_free() == cluster.total_chips == 128
        cluster.check_consistent()

    def test_duplicate_name_raises_overlap(self):
        cluster = ClusterState()
        cluster.allocate_box("a", (1, 1, 1), 0, (0, 0, 0))
        with pytest.raises(SliceOverlapError):
            cluster.allocate_box("a", (1, 1, 1), 1, (0, 0, 0))
        with pytest.raises(SliceOverlapError):
            cluster.allocate_steered("a", (1, 1, 1), 1)

    def test_steered_allocation_costs_circuits(self):
        cluster = ClusterState(racks=1, steer_circuits=8)
        s = cluster.allocate_steered("s", (2, 2, 2), 0)
        assert not s.contiguous and s.circuits == 8 and s.offset is None
        assert s.electrical_utilization == 0.0
        assert s.optical_utilization == 1.0
        assert cluster.circuits_used(0) == 8
        cluster.check_consistent()
        with pytest.raises(WavelengthBudgetError):
            cluster.allocate_steered("t", (1, 1, 1), 0)
        cluster.release("s")
        assert cluster.circuits_used(0) == 0

    def test_steered_needs_free_chips(self):
        cluster = ClusterState(racks=1, rack_shape=(2, 2, 2))
        cluster.allocate_box("fill", (2, 2, 2), 0, (0, 0, 0))
        with pytest.raises(NoContiguousPlacementError):
            cluster.allocate_steered("s", (1, 1, 1), 0)

    def test_shape_too_large(self):
        cluster = ClusterState(rack_shape=(2, 2, 2))
        with pytest.raises(ShapeTooLargeError):
            cluster.find_offset(0, (4, 1, 1))

    def test_find_offset_ignore_masks_chips_free(self):
        cluster = ClusterState(racks=1, rack_shape=(2, 2, 2))
        a = cluster.allocate_box("a", (2, 2, 2), 0, (0, 0, 0))
        assert cluster.find_offset(0, (2, 2, 2)) is None
        assert cluster.find_offset(
            0, (2, 2, 2), ignore=frozenset(a.chips)
        ) == (0, 0, 0)

    def test_steer_rings_upgrades_within_budget(self):
        cluster = ClusterState(racks=1, steer_circuits=8)
        placed = cluster.allocate_box("a", (2, 2, 1), 0, (0, 0, 0))
        assert placed.optical_utilization < 1.0
        upgraded = cluster.steer_rings("a")
        assert upgraded.optical_utilization == 1.0
        assert upgraded.circuits == 4 and cluster.circuits_used(0) == 4
        # Second call is a no-op; over-budget requests are too.
        assert cluster.steer_rings("a") == upgraded
        big = cluster.allocate_box("b", (4, 2, 1), 0, (0, 2, 0))
        assert cluster.steer_rings("b") == big  # needs 8 > 4 left
        assert cluster.circuits_used(0) == 4
        cluster.check_consistent()

    def test_fragmentation_metrics(self):
        cluster = ClusterState(racks=1)
        assert cluster.largest_allocatable(CATALOG_SHAPES) == 64
        cluster.allocate_box("a", (4, 4, 2), 0, (0, 0, 0))
        assert cluster.largest_allocatable(CATALOG_SHAPES) == 32
        # A full-rack box strands nothing; a sub-rack box strands the
        # rings it does not span (electrical view only).
        assert cluster.stranded_fraction_rate("photonic") >= 0.0
        assert cluster.stranded_fraction_rate(
            "electrical"
        ) > cluster.stranded_fraction_rate("photonic")


class TestPolicies:
    def test_factory(self):
        for name in PLACEMENT_POLICY_NAMES:
            assert make_placement_policy(name).name == name
        with pytest.raises(ValueError):
            make_placement_policy("bogus")

    @pytest.mark.parametrize("name", PLACEMENT_POLICY_NAMES)
    def test_every_policy_places_on_empty_cluster(self, name):
        cluster = ClusterState(racks=2)
        allocation = make_placement_policy(name).place(
            cluster, "job-0", (4, 2, 1)
        )
        assert allocation is not None and allocation.chip_count == 8
        cluster.check_consistent()

    def test_best_fit_prefers_ring_closing_orientation(self):
        # On a non-cubic 4x2x2 rack the literal (1, 2, 4) orientation
        # does not even fit; best-fit rotates it so two of the three
        # rings span their rack dimension.
        cluster = ClusterState(racks=1, rack_shape=(4, 2, 2))
        placed = make_placement_policy("best-fit").place(
            cluster, "a", (1, 2, 4)
        )
        assert placed is not None
        assert placed.shape in {(4, 2, 1), (4, 1, 2)}
        assert placed.electrical_utilization == pytest.approx(2 / 3)

    def test_oversized_job_queues_instead_of_crashing(self):
        cluster = ClusterState(racks=1, rack_shape=(2, 2, 2))
        for name in ("first-fit", "best-fit", "defrag"):
            assert make_placement_policy(name).place(
                cluster, "a", (4, 4, 4)
            ) is None

    def test_defrag_compacts_and_never_regresses(self):
        cluster = ClusterState(racks=1)
        policy = make_placement_policy("defrag")
        policy.place(cluster, "a", (4, 4, 2))
        survivor = policy.place(cluster, "b", (4, 4, 2))
        assert survivor.offset == (0, 0, 2)
        cluster.release("a")
        before = cluster.largest_allocatable(CATALOG_SHAPES)
        moves = policy.on_departure(cluster, 0)
        after = cluster.largest_allocatable(CATALOG_SHAPES)
        assert moves == 1
        assert cluster.allocations["b"].offset == (0, 0, 0)
        assert after >= before
        cluster.check_consistent()

    def test_steer_falls_back_to_scattered_chips(self):
        # Fragment the rack so no 2x2x2 box fits, then steer: the job
        # lands non-contiguously and pays circuits.
        cluster = ClusterState(racks=1, rack_shape=(2, 2, 2))
        pinned = [
            (x, y, z)
            for x in range(2) for y in range(2) for z in range(2)
            if (x + y + z) % 2 == 0
        ]
        for k, chip in enumerate(pinned):
            cluster.allocate_box(f"pin-{k}", (1, 1, 1), 0, chip)
        policy = SteerOnArrivalPolicy()
        placed = policy.place(cluster, "s", (2, 2, 1))
        assert placed is not None and not placed.contiguous
        assert placed.circuits == 4
        cluster.check_consistent()


class TestTenancyConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenancyConfig(racks=0)
        with pytest.raises(ValueError):
            TenancyConfig(horizon_s=0.0)
        with pytest.raises(ValueError):
            TenancyConfig(arrivals_per_day=0.0)
        with pytest.raises(ValueError):
            TenancyConfig(max_queue_wait_s=0.0)
        with pytest.raises(ValueError):
            TenancyConfig(steer_circuits=-1)
        with pytest.raises(ValueError):
            TenancyConfig(series_points=0)
        with pytest.raises(ValueError):
            TenancyConfig(rack_shape=(0, 4, 4))

    def test_chips(self):
        assert TenancyConfig().total_chips == 256
        assert SHORT.total_chips == 128


class TestSimulator:
    def test_rejects_unknown_fabric(self):
        with pytest.raises(ValueError):
            TenancySimulator(SHORT, "quantum")

    def test_runs_once(self):
        simulator = TenancySimulator(SHORT, "photonic")
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.run()

    def test_steering_policy_refused_on_electrical(self):
        with pytest.raises(ValueError):
            TenancySimulator(SHORT, "electrical", SteerOnArrivalPolicy())
        with pytest.raises(ValueError):
            simulate_tenancy(SHORT, "electrical", steering=True)

    @pytest.mark.parametrize("fabric", ["electrical", "photonic"])
    @pytest.mark.parametrize("policy", PLACEMENT_POLICY_NAMES)
    def test_invariants_under_every_policy(self, fabric, policy):
        if policy == "steer" and fabric == "electrical":
            pytest.skip("steering needs reconfigurable reach")
        stats = simulate_tenancy(SHORT, fabric, policy=policy)
        assert stats.arrivals > 400
        assert (
            stats.placed + stats.rejected + stats.queued_at_horizon
            == stats.arrivals
        )
        assert stats.completed + stats.running_at_horizon == stats.placed
        assert 0.0 <= stats.mean_occupancy <= 1.0
        assert 0.0 <= stats.rejection_rate <= 1.0
        assert (
            stats.queue_delay_p50_s
            <= stats.queue_delay_p90_s
            <= stats.queue_delay_p99_s
            <= stats.queue_delay_max_s
            <= SHORT.max_queue_wait_s
        )
        assert stats.stranded_chip_seconds >= 0.0
        assert len(stats.series) == SHORT.series_points
        for start, end, mean, largest, free in stats.series:
            assert end > start
            assert 0.0 <= mean <= SHORT.total_chips
            assert 0 <= largest <= free <= SHORT.total_chips
        if fabric == "electrical":
            assert stats.steered_placements == 0
            assert stats.circuits_peak == 0

    @pytest.mark.parametrize("fabric", ["electrical", "photonic"])
    def test_deterministic_per_seed(self, fabric):
        assert simulate_tenancy(SHORT, fabric) == simulate_tenancy(
            SHORT, fabric
        )

    def test_different_seeds_diverge(self):
        other = TenancyConfig(**{**SHORT.__dict__, "seed": 4})
        assert simulate_tenancy(SHORT, "electrical") != simulate_tenancy(
            other, "electrical"
        )

    def test_photonic_beats_electrical_on_stranding_and_rejections(self):
        # Mean delay is deliberately not compared here: SHORT runs the
        # cluster overloaded, where photonic admits jobs electrical
        # rejects — the extra queue-drained placements raise the mean
        # among the placed (a survivorship artifact, not a regression).
        electrical = simulate_tenancy(SHORT, "electrical")
        photonic = simulate_tenancy(SHORT, "photonic")
        assert photonic.stranded_fraction < electrical.stranded_fraction
        assert photonic.rejected <= electrical.rejected
        assert photonic.steered_placements > 0
        assert photonic.circuits_peak > 0

    def test_events_processed_is_deterministic(self):
        a = simulate_tenancy(SHORT, "electrical")
        b = simulate_tenancy(SHORT, "electrical")
        assert a.events_processed == b.events_processed > 0

    def test_reported_policy_is_the_callers(self):
        stats = simulate_tenancy(SHORT, "photonic", policy="best-fit")
        assert stats.policy == "best-fit"
        assert stats.steering is True
        quiet = simulate_tenancy(
            SHORT, "photonic", policy="best-fit", steering=False
        )
        assert quiet.steering is False
        assert quiet.steered_placements == 0


class TestTenancyPlanSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenancyPlan(days=-1.0)
        with pytest.raises(ValueError):
            TenancyPlan(policy="steer")
        with pytest.raises(ValueError):
            TenancyPlan(profile="bogus")
        with pytest.raises(ValueError):
            TenancyPlan(arrivals_per_day=0.0)
        with pytest.raises(ValueError):
            TenancyPlan(racks=0)

    def test_round_trip(self):
        plan = TenancyPlan(days=2.0, seed=5, policy="defrag", racks=2)
        assert TenancyPlan.from_dict(plan.to_dict()) == plan

    def test_default_plan_keeps_spec_bytes(self):
        # Pre-tenancy specs must serialize to the exact same bytes, so
        # cache keys, goldens and archived results stay valid.
        spec = ScenarioSpec()
        data = spec.to_dict()
        assert "tenancy" not in data
        assert ScenarioSpec.from_dict(data) == spec

    def test_configured_plan_round_trips(self):
        spec = ScenarioSpec(
            outputs=("tenancy",), tenancy=TenancyPlan(days=1.0, seed=9)
        )
        data = spec.to_dict()
        assert data["tenancy"]["days"] == 1.0
        assert ScenarioSpec.from_dict(data) == spec


class TestTenancyOutput:
    @pytest.fixture(scope="class")
    def result(self):
        return run(ScenarioSpec(
            fabric="photonic",
            outputs=("tenancy",),
            tenancy=TenancyPlan(days=0.25, seed=11, arrivals_per_day=2400.0),
        ))

    def test_photonic_dominates(self, result):
        report = result.tenancy
        assert report.chips == 256
        assert report.electrical.arrivals == report.photonic.arrivals > 0
        assert (
            report.photonic.stranded_fraction
            < report.electrical.stranded_fraction
        )
        assert report.queue_delay_gap_s >= 0.0
        assert report.rejection_gap >= 0.0
        assert report.electrical.steering is False
        assert report.photonic.steering is True

    def test_json_round_trip(self, result):
        blob = result.to_json(indent=2, sort_keys=True)
        restored = RunResult.from_json(blob)
        assert restored == result
        assert restored.to_json(indent=2, sort_keys=True) == blob

    def test_derived_gaps_match_sections(self, result):
        data = result.to_dict()["tenancy"]
        assert data["queue_delay_gap_s"] == pytest.approx(
            data["electrical"]["queue_delay_mean_s"]
            - data["photonic"]["queue_delay_mean_s"]
        )
        assert data["rejection_gap"] == pytest.approx(
            data["electrical"]["rejection_rate"]
            - data["photonic"]["rejection_rate"]
        )

    def test_zero_days_refused(self):
        with pytest.raises(UnsupportedOutput):
            run(ScenarioSpec(fabric="photonic", outputs=("tenancy",)))

    def test_switched_fabric_refused(self):
        with pytest.raises(UnsupportedOutput):
            run(ScenarioSpec(
                fabric="switched",
                outputs=("tenancy",),
                tenancy=TenancyPlan(days=0.25),
            ))

    def test_session_caches_tenancy_runs(self, result):
        from repro.api import FabricSession

        session = FabricSession()
        spec = ScenarioSpec(
            fabric="photonic",
            outputs=("tenancy",),
            tenancy=TenancyPlan(days=0.25, seed=11, arrivals_per_day=2400.0),
        )
        first = session.run(spec)
        second = session.run(spec)
        assert first == second
        assert session.runs_executed == 1


class TestTenancyCli:
    def test_table_output(self, capsys):
        assert main(["tenancy", "--days", "0.25", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Tenant churn" in out
        assert "electrical" in out and "photonic" in out

    def test_json_matches_golden(self, capsys):
        from pathlib import Path

        golden = Path(__file__).parent / "golden" / "tenancy.json"
        assert main(["tenancy", "--json", "-"]) == 0
        assert capsys.readouterr().out == golden.read_text()

    def test_json_is_loadable(self, capsys):
        assert main(["tenancy", "--days", "0.25", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        restored = RunResult.from_dict(payload)
        assert restored.tenancy.days == 0.25

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["tenancy", "--policy", "bogus"])
