"""Tests for the wafer power-budget model."""

import pytest

from repro.phy.thermal import TilePowerModel


class TestTilePower:
    def test_components_sum(self):
        report = TilePowerModel().tile_power()
        assert report.total_w == pytest.approx(
            report.laser_w
            + report.ring_tuning_w
            + report.switch_heater_w
            + report.receiver_w
        )

    def test_laser_power_dominates_at_low_efficiency(self):
        report = TilePowerModel(laser_efficiency=0.05).tile_power()
        assert report.laser_w > report.ring_tuning_w
        assert report.laser_w > report.receiver_w

    def test_dark_tile_keeps_heaters_and_tuning(self):
        report = TilePowerModel().tile_power(active_wavelengths=0)
        assert report.laser_w == 0.0
        assert report.receiver_w == 0.0
        assert report.ring_tuning_w > 0.0
        assert report.switch_heater_w > 0.0

    def test_power_scales_with_activity(self):
        model = TilePowerModel()
        half = model.tile_power(active_wavelengths=8)
        full = model.tile_power(active_wavelengths=16)
        assert full.laser_w == pytest.approx(2 * half.laser_w)

    def test_activity_bounds(self):
        with pytest.raises(ValueError):
            TilePowerModel().tile_power(active_wavelengths=17)
        with pytest.raises(ValueError):
            TilePowerModel().tile_power(active_wavelengths=-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TilePowerModel(laser_efficiency=0.0)
        with pytest.raises(ValueError):
            TilePowerModel(ring_tuning_mw=-1.0)


class TestWaferPower:
    def test_wafer_scales_tiles(self):
        model = TilePowerModel()
        wafer = model.wafer_power()
        assert wafer.total_w == pytest.approx(32 * model.tile_power().total_w)

    def test_aggregate_rate(self):
        wafer = TilePowerModel().wafer_power()
        assert wafer.aggregate_rate_bps == pytest.approx(32 * 16 * 224e9)

    def test_pj_per_bit_is_sub_picojoule_class(self):
        # A full wafer moves ~115 Tbps; total power is tens of watts, so
        # the fabric-level figure lands around a pJ/bit — the class of
        # efficiency the photonics literature targets.
        wafer = TilePowerModel().wafer_power()
        assert 0.1 < wafer.pj_per_bit < 5.0

    def test_idle_wafer_infinite_pj_per_bit(self):
        wafer = TilePowerModel().wafer_power(active_wavelengths=0)
        assert wafer.pj_per_bit == float("inf")

    def test_tile_count_validation(self):
        with pytest.raises(ValueError):
            TilePowerModel().wafer_power(tiles=0)
