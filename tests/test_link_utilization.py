"""End-to-end tests for the link-utilization telemetry pipeline.

Covers the whole chain: instrumented schedule execution (ring all-reduce
at ~100 % utilization on its links, ~0 elsewhere), the ``link_utilization``
RunResult section and its JSON/cache round-trip, the analysis aggregation
reproducing the Figure 5c 66 % stranded-bandwidth story, and the CLI
surfaces (``repro utilization``, ``simulate --telemetry``) — including
that observability is zero-cost when disabled (telemetry-off output stays
byte-identical to the goldens).
"""

import json
from pathlib import Path

import pytest

from repro.analysis.utilization import (
    compare_link_utilization,
    dimension_utilization,
)
from repro.api import (
    FabricSession,
    LinkUtilizationReport,
    RunResult,
    ScenarioSpec,
    UnsupportedOutput,
    compare,
    run,
    spec_key,
    table1_slices,
)
from repro.collectives.primitives import Interconnect, build_reduce_scatter_schedule
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.sim.runner import run_schedule
from repro.topology.slices import Slice
from repro.topology.torus import Torus

GOLDEN_DIR = Path(__file__).parent / "golden"

SIM_SPEC = ScenarioSpec(
    fabric="electrical",
    slices=table1_slices(),
    mode="sim",
    outputs=("telemetry", "link_utilization"),
)


class TestRingAllReduceUtilization:
    """A congestion-free single-ring collective, fully instrumented."""

    def setup_method(self):
        rack = Torus((4, 4, 4))
        slc = Slice(name="ring", rack=rack, offset=(0, 0, 0), shape=(4, 1, 1))
        self.schedule = build_reduce_scatter_schedule(
            slc, 1 << 20, Interconnect.OPTICAL
        )
        self.caps = {link: CHIP_EGRESS_BYTES for link in rack.links()}
        self.rack = rack

    def test_active_links_run_at_full_utilization(self):
        result, telemetry = run_schedule(
            self.schedule, self.caps, telemetry=True
        )
        used = {
            link
            for phase in self.schedule.phases
            for t in phase.transfers
            for link in t.links
        }
        assert used, "ring schedule moved no bytes"
        for link in used:
            # One ring, no contention: every used link saturates for the
            # whole transfer window.
            assert telemetry.utilization(
                link, result.transfer_s
            ) == pytest.approx(1.0)

    def test_unused_links_report_zero_and_idle(self):
        result, telemetry = run_schedule(
            self.schedule, self.caps, telemetry=True
        )
        used = {
            link
            for phase in self.schedule.phases
            for t in phase.transfers
            for link in t.links
        }
        idle = set(telemetry.idle_links())
        assert idle == set(self.caps) - used
        for link in idle:
            assert telemetry.utilization(link, result.transfer_s) == 0.0

    def test_durations_byte_identical_to_telemetry_off(self):
        plain = run_schedule(self.schedule, self.caps)
        observed, _ = run_schedule(self.schedule, self.caps, telemetry=True)
        # Exact equality, not approx: observation must not perturb a
        # single bit of the measured timeline.
        assert observed == plain


class TestRunResultSection:
    def test_report_shape(self):
        result = run(SIM_SPEC)
        report = result.link_utilization
        assert isinstance(report, LinkUtilizationReport)
        assert report.horizon_s > 0
        assert len(report.links) == sum(1 for _ in Torus((4, 4, 4)).links())
        assert report.links == tuple(
            sorted(report.links, key=lambda li: (li.src, li.dst))
        )

    def test_telemetry_section_unchanged_by_instrumentation(self):
        with_util = run(SIM_SPEC)
        without = run(SIM_SPEC.with_outputs("telemetry"))
        assert with_util.telemetry == without.telemetry

    def test_json_round_trip(self):
        result = run(SIM_SPEC)
        restored = RunResult.from_dict(result.to_dict())
        assert restored == result
        assert json.dumps(restored.to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )

    def test_from_dict_without_section_is_backward_compatible(self):
        # Cached JSON written before this section existed must still load.
        data = run(SIM_SPEC.with_outputs("telemetry")).to_dict()
        data.pop("link_utilization")
        restored = RunResult.from_dict(data)
        assert restored.link_utilization is None

    def test_spec_key_unchanged_for_telemetry_off_specs(self):
        # The new output only appears in keys of specs that request it,
        # so cached telemetry-off results stay valid.
        base = ScenarioSpec(slices=table1_slices(), outputs=("costs",))
        assert "link_utilization" not in json.dumps(base.to_dict())
        assert spec_key(base) != spec_key(
            ScenarioSpec(
                slices=table1_slices(),
                mode="sim",
                outputs=("costs", "link_utilization"),
            )
        )

    def test_requires_sim_mode(self):
        with pytest.raises(ValueError, match="link_utilization"):
            ScenarioSpec(slices=table1_slices(), outputs=("link_utilization",))

    def test_switched_fabric_unsupported(self):
        spec = ScenarioSpec(
            fabric="switched",
            slices=table1_slices(),
            mode="sim",
            outputs=("link_utilization",),
        )
        with pytest.raises(UnsupportedOutput):
            FabricSession().run(spec)


class TestFigure5cStory:
    def test_electrical_idle_dimension_measured(self):
        # Slice-1 (4x2x1) cannot ring along dimension 2; the measurement
        # must show that dimension fully idle on the electrical torus.
        result = run(SIM_SPEC.with_outputs("link_utilization"))
        dims = {d.dimension: d for d in dimension_utilization(result.link_utilization)}
        assert dims[2].mean_utilization == 0.0
        assert dims[2].idle_fraction == 1.0
        assert dims[0].mean_utilization > 0.0
        assert dims[1].mean_utilization > 0.0

    def test_measured_loss_reproduces_66_percent(self):
        spec = SIM_SPEC.with_outputs("link_utilization")
        results = compare(spec, fabrics=("electrical", "photonic"))
        comparison = compare_link_utilization(
            results["electrical"].link_utilization,
            results["photonic"].link_utilization,
        )
        # Paper Figure 5c: static electrical links strand ~66 % of
        # Slice-1's bandwidth. Measured, not asserted.
        assert 0.60 <= comparison.bandwidth_loss_fraction <= 0.70
        assert comparison.speedup > 2.5


class TestCliGolden:
    """Telemetry-off CLI output stays byte-identical to the goldens."""

    @pytest.mark.parametrize(
        "name,argv",
        [
            ("simulate.txt", ["simulate"]),
            ("sweep.json", ["sweep", "--no-cache"]),
            ("utilization.json", ["utilization"]),
        ],
        ids=["simulate", "sweep", "utilization"],
    )
    def test_output_matches_golden(self, capsys, name, argv):
        from repro.cli import main

        golden = (GOLDEN_DIR / name).read_text()
        assert main(argv) == 0
        assert capsys.readouterr().out == golden

    def test_simulate_telemetry_json_is_deterministic(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--telemetry"]) == 0
        first = capsys.readouterr().out
        assert main(["simulate", "--telemetry"]) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["link_utilization"]["links"]
        assert payload["link_utilization"]["stranded_fraction"] > 0

    def test_simulate_table_unchanged_after_telemetry_run(self, capsys):
        # Running the instrumented variant first must not leak into the
        # plain table path (separate spec keys, shared session).
        from repro.cli import main

        golden = (GOLDEN_DIR / "simulate.txt").read_text()
        assert main(["simulate", "--telemetry"]) == 0
        capsys.readouterr()
        assert main(["simulate"]) == 0
        assert capsys.readouterr().out == golden
