"""Tests for the reticle stitch-loss model (paper Figure 3b)."""

import numpy as np
import pytest

from repro.phy.stitch_loss import StitchLossModel


class TestSampling:
    def test_samples_are_nonnegative(self):
        model = StitchLossModel(rng=np.random.default_rng(1))
        assert np.all(model.sample(5000) >= 0.0)

    def test_sample_count(self):
        assert StitchLossModel().sample(17).shape == (17,)

    def test_sample_rejects_zero(self):
        with pytest.raises(ValueError):
            StitchLossModel().sample(0)

    def test_mean_matches_paper(self):
        model = StitchLossModel(rng=np.random.default_rng(2))
        draws = model.sample(20000)
        assert float(np.mean(draws)) == pytest.approx(0.25, abs=0.01)

    def test_seed_reproducibility(self):
        a = StitchLossModel(rng=np.random.default_rng(9)).sample(100)
        b = StitchLossModel(rng=np.random.default_rng(9)).sample(100)
        assert np.array_equal(a, b)

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            StitchLossModel(mean_db=-0.1)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            StitchLossModel(sigma_db=-0.1)

    def test_zero_sigma_is_deterministic(self):
        model = StitchLossModel(sigma_db=0.0)
        assert np.allclose(model.sample(10), 0.25)


class TestPathLoss:
    def test_zero_crossings_zero_loss(self):
        assert StitchLossModel().path_loss_db(0) == 0.0

    def test_negative_crossings_rejected(self):
        with pytest.raises(ValueError):
            StitchLossModel().path_loss_db(-1)
        with pytest.raises(ValueError):
            StitchLossModel().expected_path_loss_db(-1)

    def test_expected_loss_linear_in_crossings(self):
        model = StitchLossModel()
        assert model.expected_path_loss_db(2) == pytest.approx(0.5)
        assert model.expected_path_loss_db(10) == pytest.approx(2.5)

    def test_sampled_path_loss_near_expected(self):
        model = StitchLossModel(rng=np.random.default_rng(4))
        losses = [model.path_loss_db(100) for _ in range(50)]
        assert float(np.mean(losses)) == pytest.approx(25.0, rel=0.05)

    def test_figure3a_circuit_two_boundaries(self):
        # The A->B circuit of Figure 3a crosses two tile boundaries; its
        # expected stitch loss is 0.5 dB — low enough to route in-layer.
        assert StitchLossModel().expected_path_loss_db(2) < 1.0


class TestHistogram:
    def test_histogram_counts_sum_to_samples(self):
        hist = StitchLossModel(rng=np.random.default_rng(3)).histogram(samples=4000)
        assert int(np.sum(hist.counts)) == 4000

    def test_histogram_statistics(self):
        hist = StitchLossModel(rng=np.random.default_rng(3)).histogram(samples=20000)
        assert hist.mean_db == pytest.approx(0.25, abs=0.01)
        assert hist.median_db == pytest.approx(0.25, abs=0.02)
        assert hist.p95_db > hist.median_db

    def test_histogram_spans_figure_range(self):
        hist = StitchLossModel(rng=np.random.default_rng(3)).histogram(samples=20000)
        assert hist.bin_edges_db[0] >= 0.0
        assert hist.bin_edges_db[-1] <= 0.8  # the Figure 3b axis range

    def test_histogram_rows_align_with_bins(self):
        hist = StitchLossModel().histogram(samples=100, bins=8)
        rows = hist.rows()
        assert len(rows) == 8
        assert sum(count for _lo, _hi, count in rows) == 100
