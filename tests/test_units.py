"""Tests for repro.phy.units conversions."""

import math

import pytest

from repro.phy import units


class TestDbConversions:
    def test_db_to_linear_zero_is_unity(self):
        assert units.db_to_linear(0.0) == 1.0

    def test_db_to_linear_ten_db(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_db_to_linear_negative(self):
        assert units.db_to_linear(-3.0) == pytest.approx(0.501187, rel=1e-5)

    def test_linear_to_db_roundtrip(self):
        for db in (-20.0, -3.0, 0.0, 0.25, 12.5):
            assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_roundtrip(self):
        for dbm in (-30.0, -11.0, 0.0, 10.0):
            assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)


class TestRateConversions:
    def test_gbps_to_bytes(self):
        assert units.gbps_to_bytes_per_s(8.0) == pytest.approx(1e9)

    def test_paper_wavelength_rate(self):
        assert units.gbps_to_bytes_per_s(224.0) == pytest.approx(28e9)

    def test_bytes_to_gbps_roundtrip(self):
        assert units.bytes_per_s_to_gbps(
            units.gbps_to_bytes_per_s(123.4)
        ) == pytest.approx(123.4)


class TestSizeAndTimeHelpers:
    def test_gib(self):
        assert units.gib(1) == 1024**3

    def test_mib(self):
        assert units.mib(2) == 2 * 1024**2

    def test_kib(self):
        assert units.kib(3) == 3 * 1024

    def test_fractional_gib(self):
        assert units.gib(0.5) == 512 * 1024**2

    def test_us(self):
        assert units.us(3.7) == pytest.approx(3.7e-6)

    def test_ns(self):
        assert units.ns(250) == pytest.approx(2.5e-7)

    def test_time_helpers_are_seconds(self):
        assert math.isclose(units.us(1000), 1e-3)
