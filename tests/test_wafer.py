"""Tests for the LIGHTPATH wafer."""

import pytest

from repro.core.tile import Direction
from repro.core.wafer import LightpathWafer


@pytest.fixture
def wafer():
    return LightpathWafer()


class TestStructure:
    def test_default_has_32_tiles(self, wafer):
        assert wafer.tile_count == 32
        assert wafer.matches_paper()

    def test_tile_lookup(self, wafer):
        assert wafer.tile((0, 0)).coord == (0, 0)
        with pytest.raises(KeyError):
            wafer.tile((9, 9))

    def test_neighbors_interior(self, wafer):
        assert len(wafer.neighbors((1, 1))) == 4

    def test_neighbors_corner(self, wafer):
        assert len(wafer.neighbors((0, 0))) == 2

    def test_direction_between(self, wafer):
        assert wafer.direction_between((0, 0), (0, 1)) is Direction.EAST
        assert wafer.direction_between((1, 0), (0, 0)) is Direction.NORTH
        with pytest.raises(ValueError):
            wafer.direction_between((0, 0), (2, 2))

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            LightpathWafer(grid=(0, 4))

    def test_tile_edge_length(self, wafer):
        assert wafer.tile_edge_m() == pytest.approx(0.200 / 8)


class TestBuses:
    def test_bus_per_adjacent_pair_per_direction(self, wafer):
        # 4x8 grid: horizontal cables 4*7, vertical 3*8 -> 52 * 2 directions.
        assert len(wafer.buses()) == 104

    def test_bus_lookup(self, wafer):
        bus = wafer.bus((0, 0), (0, 1))
        assert bus.src == (0, 0) and bus.dst == (0, 1)
        with pytest.raises(KeyError):
            wafer.bus((0, 0), (2, 2))

    def test_bus_capacity_matches_paper(self, wafer):
        assert wafer.bus((0, 0), (0, 1)).capacity == 10_000

    def test_bus_allocate_release(self, wafer):
        bus = wafer.bus((0, 0), (0, 1))
        track = bus.allocate("c1")
        assert bus.free == bus.capacity - 1
        assert bus.owner_of(track) == "c1"
        assert bus.release("c1") == 1
        assert bus.free == bus.capacity

    def test_bus_exhaustion(self):
        wafer = LightpathWafer(grid=(1, 2), bus_capacity=1)
        bus = wafer.bus((0, 0), (0, 1))
        bus.allocate("a")
        with pytest.raises(RuntimeError):
            bus.allocate("b")


class TestFibers:
    def test_edge_tiles_have_fiber_ports(self, wafer):
        ports = wafer.fiber_ports((0, 0), Direction.NORTH)
        assert len(ports) == 16

    def test_interior_edges_have_none(self, wafer):
        assert wafer.fiber_ports((1, 1), Direction.NORTH) == []

    def test_every_tile_on_boundary_is_edge_tile(self, wafer):
        edge = set(wafer.edge_tiles())
        for (r, c) in wafer.tiles:
            on_boundary = r in (0, 3) or c in (0, 7)
            assert ((r, c) in edge) == on_boundary

    def test_free_fiber_port_allocation(self, wafer):
        port = wafer.free_fiber_port((0, 0), Direction.NORTH)
        port.allocate("circuit")
        assert port.in_use
        with pytest.raises(RuntimeError):
            port.allocate("other")
        next_port = wafer.free_fiber_port((0, 0), Direction.NORTH)
        assert next_port is not port
        port.release()
        assert not port.in_use


class TestAccelerators:
    def test_stack_and_lookup(self, wafer):
        wafer.stack_accelerator((2, 3), "gpu-7")
        assert wafer.accelerator_tile("gpu-7").coord == (2, 3)

    def test_double_stack_rejected(self, wafer):
        wafer.stack_accelerator((2, 3), "gpu-7")
        with pytest.raises(RuntimeError):
            wafer.stack_accelerator((2, 3), "gpu-8")

    def test_unknown_accelerator(self, wafer):
        with pytest.raises(KeyError):
            wafer.accelerator_tile("ghost")


class TestCapabilities:
    def test_capability_rows(self, wafer):
        rows = dict(wafer.capabilities().rows())
        assert rows["tiles per wafer"] == "32"
        assert rows["per-wavelength rate"] == "224 Gbps"
        assert rows["switch reconfiguration"] == "3.7 us"

    def test_small_wafer_does_not_match_paper(self):
        assert not LightpathWafer(grid=(2, 2)).matches_paper()
