"""Tests for the LIGHTPATH tile."""

import pytest

from repro.core.tile import Direction, LightpathTile, TileSwitch


class TestDirections:
    def test_opposites(self):
        assert Direction.NORTH.opposite is Direction.SOUTH
        assert Direction.EAST.opposite is Direction.WEST

    def test_deltas_cancel(self):
        for d in Direction:
            dr, dc = d.delta
            odr, odc = d.opposite.delta
            assert (dr + odr, dc + odc) == (0, 0)


class TestTileSwitch:
    def test_route_and_query(self):
        switch = TileSwitch(facing=Direction.NORTH)
        switch.route(3, Direction.EAST)
        assert switch.routed_towards(3) is Direction.EAST
        assert switch.active_routes == 1

    def test_cannot_route_back_out_facing(self):
        switch = TileSwitch(facing=Direction.NORTH)
        with pytest.raises(ValueError):
            switch.route(0, Direction.NORTH)

    def test_degree_is_three(self):
        assert TileSwitch(facing=Direction.EAST).degree == 3

    def test_clear_route(self):
        switch = TileSwitch(facing=Direction.NORTH)
        switch.route(1, Direction.SOUTH)
        switch.clear(1)
        assert switch.routed_towards(1) is None
        switch.clear(1)  # idempotent

    def test_failed_switch_rejects_routes(self):
        switch = TileSwitch(facing=Direction.NORTH, failed=True)
        with pytest.raises(ValueError):
            switch.route(0, Direction.EAST)


class TestTile:
    def test_default_tile_matches_paper(self):
        tile = LightpathTile(coord=(0, 0))
        tile.validate_paper_geometry()

    def test_four_switches_one_per_direction(self):
        tile = LightpathTile(coord=(0, 0))
        assert set(tile.switches) == set(Direction)

    def test_free_wavelengths_initially_all(self):
        tile = LightpathTile(coord=(0, 0))
        assert len(tile.free_wavelengths()) == 16
        assert tile.egress_capacity() == 16

    def test_serdes_binding_consumes_wavelength(self):
        tile = LightpathTile(coord=(0, 0))
        tile.serdes.lanes[0].bound_to = "conn"
        assert 0 not in tile.free_wavelengths()
        assert tile.egress_capacity() == 15

    def test_laser_failure_consumes_wavelength(self):
        tile = LightpathTile(coord=(0, 0))
        tile.lasers.fail(5)
        assert 5 not in tile.free_wavelengths()

    def test_fail_and_repair(self):
        tile = LightpathTile(coord=(0, 0))
        assert tile.working
        tile.fail()
        assert not tile.working
        tile.repair()
        assert tile.working
