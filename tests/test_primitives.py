"""Tests for slice-level strategy selection (the Tables 1/2 logic)."""

import pytest

from repro.collectives.primitives import (
    Interconnect,
    StrategyKind,
    build_reduce_scatter_schedule,
    plan_reduce_scatter,
    reduce_scatter_cost,
    reduce_scatter_stage_costs,
)
from repro.topology.slices import Slice
from repro.topology.torus import Torus


@pytest.fixture
def rack():
    return Torus((4, 4, 4))


def make(rack, shape, name="s"):
    return Slice(name=name, rack=rack, offset=(0, 0, 0), shape=shape)


class TestStrategySelection:
    def test_slice1_electrical_single_ring(self, rack):
        strategy = plan_reduce_scatter(make(rack, (4, 2, 1)), Interconnect.ELECTRICAL)
        assert strategy.kind is StrategyKind.SINGLE_RING
        assert strategy.bandwidth_fraction == pytest.approx(1 / 3)
        assert not strategy.reconfig_per_stage

    def test_slice1_optical_steered_ring(self, rack):
        strategy = plan_reduce_scatter(make(rack, (4, 2, 1)), Interconnect.OPTICAL)
        assert strategy.kind is StrategyKind.SINGLE_RING
        assert strategy.bandwidth_fraction == 1.0
        assert strategy.reconfig_per_stage

    def test_slice3_electrical_bucket(self, rack):
        strategy = plan_reduce_scatter(make(rack, (4, 4, 1)), Interconnect.ELECTRICAL)
        assert strategy.kind is StrategyKind.BUCKET
        assert strategy.dims == (0, 1)
        assert strategy.bandwidth_fraction == pytest.approx(1 / 3)

    def test_slice3_optical_steered_bucket(self, rack):
        strategy = plan_reduce_scatter(make(rack, (4, 4, 1)), Interconnect.OPTICAL)
        assert strategy.kind is StrategyKind.BUCKET
        assert strategy.bandwidth_fraction == pytest.approx(1 / 2)
        assert strategy.reconfig_per_stage

    def test_full_rack_electrical_bucket_all_dims(self, rack):
        strategy = plan_reduce_scatter(make(rack, (4, 4, 4)), Interconnect.ELECTRICAL)
        assert strategy.kind is StrategyKind.BUCKET
        assert strategy.dims == (0, 1, 2)

    def test_single_chip_rejected(self, rack):
        with pytest.raises(ValueError):
            plan_reduce_scatter(make(rack, (1, 1, 1)), Interconnect.ELECTRICAL)

    def test_describe_mentions_interconnect(self, rack):
        text = plan_reduce_scatter(make(rack, (4, 2, 1)), Interconnect.OPTICAL).describe()
        assert "optical" in text


class TestTable1:
    def test_electrical_row(self, rack):
        cost = reduce_scatter_cost(make(rack, (4, 2, 1)), Interconnect.ELECTRICAL)
        assert cost.alpha_count == 7
        assert cost.beta_factor == pytest.approx(3 * 7 / 8)
        assert cost.reconfig_count == 0

    def test_optical_row(self, rack):
        cost = reduce_scatter_cost(make(rack, (4, 2, 1)), Interconnect.OPTICAL)
        assert cost.alpha_count == 7
        assert cost.beta_factor == pytest.approx(7 / 8)
        assert cost.reconfig_count == 1

    def test_three_x_beta_ratio(self, rack):
        slc = make(rack, (4, 2, 1))
        electrical = reduce_scatter_cost(slc, Interconnect.ELECTRICAL)
        optical = reduce_scatter_cost(slc, Interconnect.OPTICAL)
        assert electrical.beta_factor / optical.beta_factor == pytest.approx(3.0)


class TestTable2:
    def test_two_stage_rows(self, rack):
        slc = make(rack, (4, 4, 1))
        electrical = reduce_scatter_stage_costs(slc, Interconnect.ELECTRICAL)
        optical = reduce_scatter_stage_costs(slc, Interconnect.OPTICAL)
        assert len(electrical) == len(optical) == 2
        for e, o in zip(electrical, optical):
            assert e.alpha_count == 3
            assert o.alpha_count == 3
            assert o.reconfig_count == 1
            assert e.beta_factor / o.beta_factor == pytest.approx(1.5)

    def test_stage_buffer_shrinkage(self, rack):
        slc = make(rack, (4, 4, 1))
        stages = reduce_scatter_stage_costs(slc, Interconnect.ELECTRICAL)
        assert stages[0].beta_factor / stages[1].beta_factor == pytest.approx(4.0)

    def test_single_ring_strategy_has_one_stage(self, rack):
        slc = make(rack, (4, 2, 1))
        assert len(reduce_scatter_stage_costs(slc, Interconnect.ELECTRICAL)) == 1


class TestScheduleConsistency:
    @pytest.mark.parametrize("shape", [(4, 2, 1), (4, 4, 1), (4, 4, 4), (4, 4, 2)])
    @pytest.mark.parametrize(
        "interconnect", [Interconnect.ELECTRICAL, Interconnect.OPTICAL]
    )
    def test_schedule_duration_matches_symbolic(self, rack, shape, interconnect):
        from repro.collectives.cost_model import CostParameters
        from repro.phy.constants import CHIP_EGRESS_BYTES

        slc = make(rack, shape)
        n_bytes = 1 << 26
        strategy = plan_reduce_scatter(slc, interconnect)
        schedule = build_reduce_scatter_schedule(slc, n_bytes, interconnect)
        params = CostParameters()
        link_bw = CHIP_EGRESS_BYTES * strategy.bandwidth_fraction
        measured = schedule.duration_s(
            lambda link: link_bw, params.alpha_s, params.reconfig_s
        )
        symbolic = reduce_scatter_cost(slc, interconnect).seconds(n_bytes, params)
        assert measured == pytest.approx(symbolic, rel=1e-9)

    def test_schedules_congestion_free_in_isolation(self, rack):
        for shape in [(4, 2, 1), (4, 4, 1), (4, 4, 4)]:
            for interconnect in (Interconnect.ELECTRICAL, Interconnect.OPTICAL):
                slc = make(rack, shape)
                schedule = build_reduce_scatter_schedule(slc, 1024.0, interconnect)
                assert schedule.is_congestion_free
