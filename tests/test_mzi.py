"""Tests for the MZI switch models (paper Figure 3a)."""

import math

import numpy as np
import pytest

from repro.phy.constants import RECONFIG_LATENCY_S
from repro.phy.mzi import (
    MziState,
    MziSwitch,
    MziSwitchDynamics,
    StepResponse,
    assert_matches_paper,
)


class TestStaticTransfer:
    def test_bar_state_routes_to_bar_port(self):
        switch = MziSwitch(insertion_loss_db=0.0)
        switch.set_state(MziState.BAR)
        assert switch.bar_power(1.0) == pytest.approx(1.0)
        assert switch.cross_power(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_cross_state_routes_to_cross_port(self):
        switch = MziSwitch(insertion_loss_db=0.0)
        switch.set_state(MziState.CROSS)
        assert switch.cross_power(1.0) == pytest.approx(1.0)
        assert switch.bar_power(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_insertion_loss_scales_output(self):
        switch = MziSwitch(insertion_loss_db=3.0)
        switch.set_state(MziState.CROSS)
        assert switch.cross_power(1.0) == pytest.approx(10 ** (-0.3), rel=1e-6)

    def test_power_conserved_up_to_loss(self):
        switch = MziSwitch(insertion_loss_db=0.5)
        for phase in np.linspace(0, math.pi, 7):
            switch.phase_rad = float(phase)
            total = switch.bar_power(1.0) + switch.cross_power(1.0)
            assert total == pytest.approx(switch.transmissivity)

    def test_intermediate_phase_splits_power(self):
        switch = MziSwitch(insertion_loss_db=0.0, phase_rad=math.pi / 2)
        assert switch.bar_power(1.0) == pytest.approx(0.5)
        assert switch.cross_power(1.0) == pytest.approx(0.5)

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            MziSwitch().set_state("diagonal")

    def test_extinction_ratio_infinite_at_ideal_state(self):
        switch = MziSwitch()
        switch.set_state(MziState.BAR)
        assert switch.extinction_ratio_db() == math.inf

    def test_extinction_ratio_finite_off_ideal(self):
        switch = MziSwitch(phase_rad=0.1)
        assert 0.0 < switch.extinction_ratio_db() < math.inf


class TestDynamics:
    def test_default_latency_matches_paper(self):
        dynamics = MziSwitchDynamics()
        assert dynamics.reconfiguration_latency() == pytest.approx(
            RECONFIG_LATENCY_S, rel=0.02
        )

    def test_assert_matches_paper_passes(self):
        assert_matches_paper()

    def test_ideal_amplitude_starts_at_zero(self):
        dynamics = MziSwitchDynamics()
        assert dynamics.ideal_amplitude(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_ideal_amplitude_is_zero_before_edge(self):
        dynamics = MziSwitchDynamics()
        assert dynamics.ideal_amplitude(np.array([-1e-6]))[0] == 0.0

    def test_ideal_amplitude_saturates(self):
        dynamics = MziSwitchDynamics()
        assert dynamics.ideal_amplitude(np.array([50e-6]))[0] == pytest.approx(1.0)

    def test_ideal_amplitude_monotone(self):
        dynamics = MziSwitchDynamics()
        t = np.linspace(0, 10e-6, 100)
        values = dynamics.ideal_amplitude(t)
        assert np.all(np.diff(values) >= 0)

    def test_measured_trace_shape(self):
        trace = MziSwitchDynamics().measure_step(duration_s=10e-6, samples=500)
        assert trace.time_s.shape == (500,)
        assert trace.amplitude.shape == (500,)

    def test_measurement_requires_valid_window(self):
        with pytest.raises(ValueError):
            MziSwitchDynamics().measure_step(duration_s=-1.0)
        with pytest.raises(ValueError):
            MziSwitchDynamics().measure_step(samples=1)

    def test_fit_recovers_time_constant(self):
        dynamics = MziSwitchDynamics(noise_rms=0.01, rng=np.random.default_rng(7))
        trace = dynamics.measure_step(duration_s=12e-6, samples=4000)
        fit = dynamics.fit_exponential(trace)
        assert fit.tau_s == pytest.approx(dynamics.tau_s, rel=0.1)

    def test_fit_settling_time_near_paper(self):
        dynamics = MziSwitchDynamics(noise_rms=0.01, rng=np.random.default_rng(3))
        trace = dynamics.measure_step(duration_s=12e-6, samples=4000)
        fit = dynamics.fit_exponential(trace)
        assert fit.settling_time(0.05) == pytest.approx(RECONFIG_LATENCY_S, rel=0.15)

    def test_fit_rejects_flat_trace(self):
        dynamics = MziSwitchDynamics()
        flat = StepResponse(
            time_s=np.linspace(0, 1e-5, 100), amplitude=np.ones(100)
        )
        with pytest.raises(ValueError):
            dynamics.fit_exponential(flat)

    def test_noise_is_reproducible_by_seed(self):
        a = MziSwitchDynamics(rng=np.random.default_rng(5)).measure_step()
        b = MziSwitchDynamics(rng=np.random.default_rng(5)).measure_step()
        assert np.allclose(a.amplitude, b.amplitude)


class TestStepResponseSettling:
    def test_settling_time_of_clean_exponential(self):
        dynamics = MziSwitchDynamics(noise_rms=0.0)
        t = np.linspace(0, 12e-6, 6000)
        trace = StepResponse(time_s=t, amplitude=dynamics.ideal_amplitude(t))
        assert trace.settling_time(0.05) == pytest.approx(
            RECONFIG_LATENCY_S, rel=0.05
        )

    def test_settled_from_start(self):
        trace = StepResponse(
            time_s=np.linspace(0, 1e-6, 10), amplitude=np.ones(10)
        )
        assert trace.settling_time(0.05) == 0.0

    def test_oscillating_trace_settles_only_at_the_end(self):
        t = np.linspace(0, 1e-6, 10)
        amplitude = np.array([0, 1, 0, 1, 0, 1, 0, 1, 0, 1], dtype=float)
        trace = StepResponse(time_s=t, amplitude=amplitude)
        assert trace.settling_time(0.05) == pytest.approx(t[-1])
