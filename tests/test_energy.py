"""Tests for the energy-per-bit link models."""

import pytest

from repro.phy.energy import (
    ElectricalLinkEnergy,
    PhotonicLinkEnergy,
    crossover_reach_m,
)


class TestElectrical:
    def test_energy_grows_with_reach(self):
        link = ElectricalLinkEnergy()
        assert link.energy_pj_per_bit(0.5) > link.energy_pj_per_bit(0.1)

    def test_zero_reach_is_base(self):
        link = ElectricalLinkEnergy(base_pj_per_bit=1.5)
        assert link.energy_pj_per_bit(0.0) == pytest.approx(1.5)

    def test_linear_in_reach(self):
        link = ElectricalLinkEnergy()
        delta = link.energy_pj_per_bit(0.2) - link.energy_pj_per_bit(0.1)
        assert delta == pytest.approx(
            link.pj_per_bit_per_db * link.loss_db_per_m * 0.1
        )

    def test_negative_reach_rejected(self):
        with pytest.raises(ValueError):
            ElectricalLinkEnergy().energy_pj_per_bit(-0.1)


class TestPhotonic:
    def test_reach_independent(self):
        link = PhotonicLinkEnergy()
        assert link.energy_pj_per_bit(0.0) == pytest.approx(
            link.energy_pj_per_bit(2.0)
        )

    def test_components_add(self):
        link = PhotonicLinkEnergy()
        assert link.energy_pj_per_bit() == pytest.approx(
            link.laser_pj_per_bit()
            + link.modulator_pj_per_bit
            + link.receiver_pj_per_bit
            + link.serdes_pj_per_bit
        )

    def test_laser_energy_per_bit_reasonable(self):
        # 10 dBm at 20 % wall-plug over 224 Gbps: ~0.22 pJ/bit.
        link = PhotonicLinkEnergy()
        assert 0.1 < link.laser_pj_per_bit() < 0.5

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            PhotonicLinkEnergy(laser_efficiency=0.0).laser_pj_per_bit()

    def test_negative_reach_rejected(self):
        with pytest.raises(ValueError):
            PhotonicLinkEnergy().energy_pj_per_bit(-1.0)


class TestCrossover:
    def test_optics_wins_at_server_scale(self):
        # A multi-accelerator server board spans tens of centimetres;
        # the crossover must sit below that for the paper's case to hold.
        reach = crossover_reach_m(ElectricalLinkEnergy(), PhotonicLinkEnergy())
        assert reach < 0.3

    def test_crossover_zero_when_optics_always_wins(self):
        cheap_optics = PhotonicLinkEnergy(
            modulator_pj_per_bit=0.0,
            receiver_pj_per_bit=0.0,
            serdes_pj_per_bit=0.0,
        )
        expensive_copper = ElectricalLinkEnergy(base_pj_per_bit=10.0)
        assert crossover_reach_m(expensive_copper, cheap_optics) == 0.0

    def test_crossover_infinite_when_copper_flat(self):
        flat_copper = ElectricalLinkEnergy(pj_per_bit_per_db=0.0)
        assert crossover_reach_m(flat_copper, PhotonicLinkEnergy()) == float("inf")

    def test_energies_equal_at_crossover(self):
        electrical = ElectricalLinkEnergy()
        photonic = PhotonicLinkEnergy()
        reach = crossover_reach_m(electrical, photonic)
        assert electrical.energy_pj_per_bit(reach) == pytest.approx(
            photonic.energy_pj_per_bit(reach)
        )
