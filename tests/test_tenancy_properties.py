"""Property-based tests for the tenancy cluster state and defrag policy.

Two guarantees, each over randomized operation sequences:

1. *Consistency*: any interleaving of box placements, steered placements
   and releases leaves :class:`ClusterState` internally consistent — the
   incremental occupancy sets match the allocators chip for chip, freed
   capacity is fully reusable, and released circuits return to the pool.
2. *Defrag monotonicity*: a departure-time compaction pass never
   regresses the fragmentation metric (the largest catalog shape still
   contiguously allocatable), for any reachable cluster state — the
   guarded-move construction, checked against arbitrary histories
   rather than one scripted scenario.
"""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a CI dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.tenancy import ClusterState, JOB_CATALOG, make_placement_policy
from repro.tenancy.policies import CATALOG_SHAPES
from repro.topology import (
    NoContiguousPlacementError,
    ShapeTooLargeError,
    WavelengthBudgetError,
)

RACKS = 2

# One operation: (kind, selector, rack). kind 0/1 = box placement,
# 2 = steered placement, 3 = release; the selector picks the catalog
# shape (or, for releases, which live job departs).
operations = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 63),
        st.integers(0, RACKS - 1),
    ),
    max_size=40,
)


def _apply(cluster: ClusterState, ops) -> list[str]:
    """Drive the cluster through ``ops``; returns the live job names."""
    live: list[str] = []
    counter = 0
    for kind, selector, rack in ops:
        if kind == 3:
            if live:
                cluster.release(live.pop(selector % len(live)))
            continue
        shape = JOB_CATALOG[selector % len(JOB_CATALOG)][0]
        name = f"job-{counter}"
        counter += 1
        try:
            if kind == 2:
                cluster.allocate_steered(name, shape, rack)
            else:
                offset = cluster.find_offset(rack, shape)
                if offset is None:
                    continue
                cluster.allocate_box(name, shape, rack, offset)
        except (
            ShapeTooLargeError,
            NoContiguousPlacementError,
            WavelengthBudgetError,
        ):
            continue
        live.append(name)
    return live


class TestClusterConsistency:
    @given(operations)
    @settings(max_examples=150, deadline=None)
    def test_any_history_stays_consistent(self, ops):
        cluster = ClusterState(racks=RACKS, steer_circuits=16)
        live = _apply(cluster, ops)
        cluster.check_consistent()
        assert set(cluster.allocations) == set(live)
        assert cluster.occupied_chips() == sum(
            cluster.allocations[name].chip_count for name in live
        )

    @given(operations)
    @settings(max_examples=100, deadline=None)
    def test_released_capacity_is_fully_reusable(self, ops):
        cluster = ClusterState(racks=RACKS, steer_circuits=16)
        for name in _apply(cluster, ops):
            cluster.release(name)
        cluster.check_consistent()
        assert cluster.total_free() == cluster.total_chips
        assert all(
            cluster.circuits_used(rack) == 0 for rack in range(RACKS)
        )
        # An empty cluster hosts the full-rack shape again — no residue.
        assert cluster.largest_allocatable(CATALOG_SHAPES) == (
            cluster.rack_chips
        )

    @given(operations, st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_release_order_is_immaterial(self, ops, rotation):
        forward = ClusterState(racks=RACKS, steer_circuits=16)
        names = _apply(forward, ops)
        rotated = names[rotation % len(names):] + names[: rotation % len(names)] if names else []
        for name in rotated:
            forward.release(name)
        forward.check_consistent()
        assert forward.total_free() == forward.total_chips


class TestDefragMonotonicity:
    @given(operations)
    @settings(max_examples=100, deadline=None)
    def test_compaction_never_regresses_fragmentation(self, ops):
        cluster = ClusterState(racks=RACKS, steer_circuits=16)
        live = _apply(cluster, ops)
        policy = make_placement_policy("defrag")
        # Run the pass after a departure from each rack in turn (the
        # simulator's trigger); the metric must be monotone every time.
        for rack in range(RACKS):
            departed = next(
                (
                    name
                    for name in live
                    if cluster.allocations[name].rack == rack
                ),
                None,
            )
            if departed is not None:
                cluster.release(departed)
                live.remove(departed)
            before = cluster.largest_allocatable(CATALOG_SHAPES)
            policy.on_departure(cluster, rack)
            after = cluster.largest_allocatable(CATALOG_SHAPES)
            assert after >= before
            cluster.check_consistent()
        # Compaction relocates jobs, never creates or destroys them.
        assert set(cluster.allocations) == set(live)
