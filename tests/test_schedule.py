"""Tests for collective schedules, phases and transfers."""

import pytest

from repro.collectives.schedule import CollectiveSchedule, Phase, Transfer
from repro.topology.torus import Link


def t(src, dst, n=100.0, path=None, owner=""):
    return Transfer(src=src, dst=dst, n_bytes=n, path=path or (src, dst), owner=owner)


class TestTransfer:
    def test_links_follow_path(self):
        transfer = t((0,), (2,), path=((0,), (1,), (2,)))
        assert transfer.links == (Link((0,), (1,)), Link((1,), (2,)))

    def test_path_endpoint_validation(self):
        with pytest.raises(ValueError):
            Transfer(src=(0,), dst=(1,), n_bytes=1, path=((0,), (2,)))

    def test_short_path_rejected(self):
        with pytest.raises(ValueError):
            Transfer(src=(0,), dst=(0,), n_bytes=1, path=((0,),))

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            t((0,), (1,), n=-1)


class TestPhase:
    def test_link_load_counts_users(self):
        phase = Phase(transfers=[t((0,), (1,)), t((0,), (1,))])
        assert phase.link_load()[Link((0,), (1,))] == 2

    def test_congestion_detection(self):
        phase = Phase(transfers=[t((0,), (1,)), t((0,), (1,))])
        assert not phase.is_congestion_free
        assert phase.congested_links()[Link((0,), (1,))] == 2

    def test_disjoint_phase_congestion_free(self):
        phase = Phase(transfers=[t((0,), (1,)), t((2,), (3,))])
        assert phase.is_congestion_free

    def test_duration_single_transfer(self):
        phase = Phase(transfers=[t((0,), (1,), n=100.0)])
        duration = phase.duration_s(lambda link: 10.0, alpha_s=1.0, reconfig_s=0.0)
        assert duration == pytest.approx(1.0 + 10.0)

    def test_duration_shares_bandwidth(self):
        phase = Phase(transfers=[t((0,), (1,), n=100.0), t((0,), (1,), n=100.0)])
        duration = phase.duration_s(lambda link: 10.0, alpha_s=0.0, reconfig_s=0.0)
        assert duration == pytest.approx(20.0)  # each gets 5 B/s

    def test_duration_charges_reconfig(self):
        phase = Phase(transfers=[t((0,), (1,), n=0.0)], reconfigurations=2)
        duration = phase.duration_s(lambda link: 1.0, alpha_s=0.5, reconfig_s=3.0)
        assert duration == pytest.approx(6.0 + 0.5)

    def test_duration_slowest_link_governs(self):
        transfer = t((0,), (2,), n=100.0, path=((0,), (1,), (2,)))
        bw = {Link((0,), (1,)): 100.0, Link((1,), (2,)): 10.0}
        phase = Phase(transfers=[transfer])
        assert phase.duration_s(lambda link: bw[link], 0.0, 0.0) == pytest.approx(10.0)

    def test_zero_bandwidth_rejected(self):
        phase = Phase(transfers=[t((0,), (1,), n=1.0)])
        with pytest.raises(ValueError):
            phase.duration_s(lambda link: 0.0, 0.0, 0.0)

    def test_empty_phase_costs_nothing(self):
        phase = Phase(transfers=[])
        assert phase.duration_s(lambda link: 1.0, 5.0, 5.0) == 0.0


class TestSchedule:
    def test_accumulates_phases(self):
        schedule = CollectiveSchedule(name="s")
        schedule.add_phase(Phase(transfers=[t((0,), (1,))]))
        schedule.add_phase(Phase(transfers=[t((1,), (0,))], reconfigurations=1))
        assert schedule.transfer_count == 2
        assert schedule.reconfiguration_count == 1
        assert schedule.total_bytes == pytest.approx(200.0)

    def test_congested_phases_indices(self):
        schedule = CollectiveSchedule(name="s")
        schedule.add_phase(Phase(transfers=[t((0,), (1,))]))
        schedule.add_phase(Phase(transfers=[t((0,), (1,)), t((0,), (1,))]))
        assert schedule.congested_phases() == [1]
        assert not schedule.is_congestion_free

    def test_duration_sums_phases(self):
        schedule = CollectiveSchedule(name="s")
        schedule.add_phase(Phase(transfers=[t((0,), (1,), n=10.0)]))
        schedule.add_phase(Phase(transfers=[t((0,), (1,), n=10.0)]))
        assert schedule.duration_s(lambda link: 1.0, 0.0, 0.0) == pytest.approx(20.0)

    def test_all_links(self):
        schedule = CollectiveSchedule(name="s")
        schedule.add_phase(Phase(transfers=[t((0,), (1,)), t((1,), (2,))]))
        assert schedule.all_links() == {Link((0,), (1,)), Link((1,), (2,))}
