"""Tests pinning the device constants to the paper's Section 3 numbers."""

import pytest

from repro.phy import constants


class TestPaperScalars:
    def test_thirty_two_tiles_per_wafer(self):
        assert constants.TILES_PER_WAFER == 32

    def test_wafer_grid_holds_all_tiles(self):
        rows, cols = constants.WAFER_GRID
        assert rows * cols == constants.TILES_PER_WAFER

    def test_sixteen_lasers_per_tile(self):
        assert constants.LASERS_PER_TILE == 16

    def test_wavelength_rate_is_224_gbps(self):
        assert constants.WAVELENGTH_RATE_BPS == pytest.approx(224e9)

    def test_wavelength_rate_bytes(self):
        assert constants.WAVELENGTH_RATE_BYTES == pytest.approx(28e9)

    def test_reconfiguration_latency_is_3_7_us(self):
        assert constants.RECONFIG_LATENCY_S == pytest.approx(3.7e-6)

    def test_four_switches_of_degree_three(self):
        assert constants.SWITCHES_PER_TILE == 4
        assert constants.SWITCH_DEGREE == 3

    def test_crossing_loss_quarter_db(self):
        assert constants.CROSSING_LOSS_DB == pytest.approx(0.25)

    def test_ten_thousand_waveguides(self):
        assert constants.WAVEGUIDES_PER_TILE == 10_000

    def test_waveguide_pitch_three_microns(self):
        assert constants.WAVEGUIDE_PITCH_M == pytest.approx(3e-6)


class TestDerivedQuantities:
    def test_chip_egress_is_all_wavelengths(self):
        assert constants.CHIP_EGRESS_BYTES == pytest.approx(
            constants.LASERS_PER_TILE * constants.WAVELENGTH_RATE_BYTES
        )

    def test_chip_egress_exceeds_nvlink_reference(self):
        # The paper cites >300 GB/s per direction for modern interconnects;
        # 16 wavelengths at 28 GB/s give 448 GB/s.
        assert constants.CHIP_EGRESS_BYTES > 300e9

    def test_mzi_time_constant_settles_in_3_7_us(self):
        import math

        settle = constants.MZI_TIME_CONSTANT_S * math.log(1 / 0.05)
        assert settle == pytest.approx(constants.RECONFIG_LATENCY_S, rel=0.02)

    def test_serdes_matches_wavelengths(self):
        assert constants.SERDES_LANES_PER_CHIP == constants.LASERS_PER_TILE


class TestTpuSubstrateConstants:
    def test_rack_is_4x4x4(self):
        assert constants.RACK_SHAPE == (4, 4, 4)

    def test_cluster_is_4096_chips(self):
        chips = 1
        for s in constants.RACK_SHAPE:
            chips *= s
        assert chips * constants.RACKS_PER_CLUSTER == 4096

    def test_sixteen_servers_of_four_chips(self):
        assert constants.SERVERS_PER_RACK * constants.CHIPS_PER_SERVER == 64
