"""Tests for max-min fair rate allocation."""

import pytest

from repro.sim.flows import Flow, max_min_rates


def flow(fid, links, remaining=100.0, demand=None):
    return Flow(
        flow_id=fid,
        links=tuple(links),
        remaining_bytes=remaining,
        demand_bytes_per_s=demand,
    )


class TestBasicFairness:
    def test_single_flow_gets_capacity(self):
        rates = max_min_rates([flow("a", ["l1"])], {"l1": 10.0})
        assert rates["a"] == pytest.approx(10.0)

    def test_two_flows_split_link(self):
        rates = max_min_rates(
            [flow("a", ["l1"]), flow("b", ["l1"])], {"l1": 10.0}
        )
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)

    def test_bottleneck_governs_multihop(self):
        rates = max_min_rates(
            [flow("a", ["wide", "narrow"])], {"wide": 100.0, "narrow": 10.0}
        )
        assert rates["a"] == pytest.approx(10.0)

    def test_classic_three_flow_maxmin(self):
        # a: l1+l2, b: l1, c: l2 with capacities 10, 20.
        rates = max_min_rates(
            [flow("a", ["l1", "l2"]), flow("b", ["l1"]), flow("c", ["l2"])],
            {"l1": 10.0, "l2": 20.0},
        )
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)
        assert rates["c"] == pytest.approx(15.0)

    def test_rates_written_back_to_flows(self):
        flows = [flow("a", ["l1"])]
        max_min_rates(flows, {"l1": 7.0})
        assert flows[0].rate_bytes_per_s == pytest.approx(7.0)


class TestDemandCaps:
    def test_demand_cap_respected(self):
        rates = max_min_rates(
            [flow("a", ["l1"], demand=3.0), flow("b", ["l1"])], {"l1": 10.0}
        )
        assert rates["a"] == pytest.approx(3.0)
        assert rates["b"] == pytest.approx(7.0)

    def test_all_capped(self):
        rates = max_min_rates(
            [flow("a", ["l1"], demand=2.0), flow("b", ["l1"], demand=3.0)],
            {"l1": 100.0},
        )
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(3.0)

    def test_zero_demand_rejected_at_construction(self):
        # Regression: a zero cap used to slip through and freeze the flow
        # at rate 0, later misreported as a link-capacity problem.
        with pytest.raises(ValueError, match="non-positive demand cap"):
            flow("a", ["l1"], demand=0.0)

    def test_negative_demand_rejected_at_construction(self):
        # A negative cap is worse than starvation: progressive filling
        # would subtract it from remaining capacity, *crediting* the link
        # and oversubscribing it for every other flow.
        with pytest.raises(ValueError, match="non-positive demand cap"):
            flow("a", ["l1"], demand=-1.0)

    def test_zeroed_demand_after_construction_diagnosed(self):
        # Flows are mutable (rates are written back), so a cap can be
        # zeroed after Flow.__post_init__ ran; max_min_rates must still
        # diagnose the cap, not blame the link capacities.
        bad = flow("a", ["l1"], demand=1.0)
        bad.demand_bytes_per_s = 0.0
        with pytest.raises(ValueError, match="capacities are not at fault"):
            max_min_rates([bad, flow("b", ["l1"])], {"l1": 10.0})

    def test_positive_caps_never_starve_or_oversubscribe(self):
        # Deterministic stress over mixed capped/uncapped multihop flows:
        # with strictly positive caps every flow gets a positive rate and
        # no link exceeds its capacity (a capped demand freezes only when
        # it is below the bottleneck share, which per-link is at most
        # remaining/users — so the clamp never hides a real deficit).
        links = ["l1", "l2", "l3", "l4"]
        caps = {"l1": 10.0, "l2": 6.0, "l3": 8.0, "l4": 2.5}
        flows = [
            flow("a", ["l1", "l2"], demand=0.5),
            flow("b", ["l2", "l3"], demand=5.0),
            flow("c", ["l1", "l3", "l4"], demand=2.4),
            flow("d", ["l4"], demand=0.1),
            flow("e", ["l2"]),
            flow("f", ["l1", "l4"]),
        ]
        rates = max_min_rates(flows, caps)
        assert all(rate > 0 for rate in rates.values())
        for link in links:
            load = sum(rates[f.flow_id] for f in flows if link in f.links)
            assert load <= caps[link] + 1e-9


class TestValidation:
    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            max_min_rates([flow("a", ["ghost"])], {"l1": 1.0})

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            max_min_rates([flow("a", ["l1"])], {"l1": 0.0})

    def test_empty_links_rejected(self):
        with pytest.raises(ValueError):
            Flow(flow_id="a", links=(), remaining_bytes=1.0)

    def test_negative_remaining_rejected(self):
        with pytest.raises(ValueError):
            Flow(flow_id="a", links=("l",), remaining_bytes=-1.0)

    def test_no_flows_is_fine(self):
        assert max_min_rates([], {"l1": 1.0}) == {}


class TestConservation:
    def test_no_link_oversubscribed(self):
        flows = [
            flow("a", ["l1", "l2"]),
            flow("b", ["l2", "l3"]),
            flow("c", ["l1", "l3"]),
            flow("d", ["l2"]),
        ]
        caps = {"l1": 10.0, "l2": 6.0, "l3": 8.0}
        rates = max_min_rates(flows, caps)
        for link, cap in caps.items():
            load = sum(
                rates[f.flow_id] for f in flows if link in f.links
            )
            assert load <= cap + 1e-9

    def test_work_conserving_on_bottleneck(self):
        flows = [flow("a", ["l1"]), flow("b", ["l1"])]
        rates = max_min_rates(flows, {"l1": 10.0})
        assert sum(rates.values()) == pytest.approx(10.0)
