"""Tests for max-min fair rate allocation."""

import pytest

from repro.sim.flows import Flow, max_min_rates


def flow(fid, links, remaining=100.0, demand=None):
    return Flow(
        flow_id=fid,
        links=tuple(links),
        remaining_bytes=remaining,
        demand_bytes_per_s=demand,
    )


class TestBasicFairness:
    def test_single_flow_gets_capacity(self):
        rates = max_min_rates([flow("a", ["l1"])], {"l1": 10.0})
        assert rates["a"] == pytest.approx(10.0)

    def test_two_flows_split_link(self):
        rates = max_min_rates(
            [flow("a", ["l1"]), flow("b", ["l1"])], {"l1": 10.0}
        )
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)

    def test_bottleneck_governs_multihop(self):
        rates = max_min_rates(
            [flow("a", ["wide", "narrow"])], {"wide": 100.0, "narrow": 10.0}
        )
        assert rates["a"] == pytest.approx(10.0)

    def test_classic_three_flow_maxmin(self):
        # a: l1+l2, b: l1, c: l2 with capacities 10, 20.
        rates = max_min_rates(
            [flow("a", ["l1", "l2"]), flow("b", ["l1"]), flow("c", ["l2"])],
            {"l1": 10.0, "l2": 20.0},
        )
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)
        assert rates["c"] == pytest.approx(15.0)

    def test_rates_written_back_to_flows(self):
        flows = [flow("a", ["l1"])]
        max_min_rates(flows, {"l1": 7.0})
        assert flows[0].rate_bytes_per_s == pytest.approx(7.0)


class TestDemandCaps:
    def test_demand_cap_respected(self):
        rates = max_min_rates(
            [flow("a", ["l1"], demand=3.0), flow("b", ["l1"])], {"l1": 10.0}
        )
        assert rates["a"] == pytest.approx(3.0)
        assert rates["b"] == pytest.approx(7.0)

    def test_all_capped(self):
        rates = max_min_rates(
            [flow("a", ["l1"], demand=2.0), flow("b", ["l1"], demand=3.0)],
            {"l1": 100.0},
        )
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(3.0)


class TestValidation:
    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            max_min_rates([flow("a", ["ghost"])], {"l1": 1.0})

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            max_min_rates([flow("a", ["l1"])], {"l1": 0.0})

    def test_empty_links_rejected(self):
        with pytest.raises(ValueError):
            Flow(flow_id="a", links=(), remaining_bytes=1.0)

    def test_negative_remaining_rejected(self):
        with pytest.raises(ValueError):
            Flow(flow_id="a", links=("l",), remaining_bytes=-1.0)

    def test_no_flows_is_fine(self):
        assert max_min_rates([], {"l1": 1.0}) == {}


class TestConservation:
    def test_no_link_oversubscribed(self):
        flows = [
            flow("a", ["l1", "l2"]),
            flow("b", ["l2", "l3"]),
            flow("c", ["l1", "l3"]),
            flow("d", ["l2"]),
        ]
        caps = {"l1": 10.0, "l2": 6.0, "l3": 8.0}
        rates = max_min_rates(flows, caps)
        for link, cap in caps.items():
            load = sum(
                rates[f.flow_id] for f in flows if link in f.links
            )
            assert load <= cap + 1e-9

    def test_work_conserving_on_bottleneck(self):
        flows = [flow("a", ["l1"]), flow("b", ["l1"])]
        rates = max_min_rates(flows, {"l1": 10.0})
        assert sum(rates.values()) == pytest.approx(10.0)
