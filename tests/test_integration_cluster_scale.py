"""Integration at the paper's full scale: the 4096-chip TPUv4 cluster."""

import pytest

from repro.failures.availability import replay_trace
from repro.failures.blast_radius import compare_policies
from repro.failures.inject import FleetFailureModel
from repro.topology.jobs import provision_job
from repro.topology.tpu import TpuCluster


class TestFullClusterScale:
    def test_cluster_instantiates_at_paper_scale(self):
        cluster = TpuCluster()
        assert cluster.chip_count == 4096
        assert len(cluster.racks) == 64
        for rack in cluster.racks[:4]:
            rack.validate_paper_geometry()

    def test_sixteen_rack_job_provisions(self):
        cluster = TpuCluster()
        job = provision_job(cluster, "supercomputer-slice", chips=1024)
        assert job.torus.shape == (4, 4, 64)
        assert job.electrical_utilization == 1.0
        assert len(job.racks) == 16

    def test_many_jobs_coexist(self):
        cluster = TpuCluster()
        jobs = []
        for i in range(8):
            jobs.append(
                provision_job(
                    cluster, f"job{i}", chips=128, first_rack=2 * i
                )
            )
        used = {rack for job in jobs for rack in job.racks}
        assert len(used) == 16

    def test_end_to_end_failure_pipeline(self):
        cluster = TpuCluster()
        model = FleetFailureModel(cluster, seed=99)
        horizon = 30 * 24 * 3600.0
        events = model.sample_failures(horizon)
        assert 20 < len(events) < 200  # ~2/day at 5-year MTBF
        model.inject(events)
        assert len(cluster.failed_chips()) == len(events)
        rack_report, optical_report = compare_policies(events)
        availability = replay_trace(events, cluster.chip_count, horizon)
        assert rack_report.total_chip_impact == 64 * len(events)
        assert optical_report.total_chip_impact == 4 * len(events)
        assert availability[1].mean_availability > availability[0].mean_availability
        assert availability[0].mean_availability > 0.99

    def test_ocs_planes_scale(self):
        cluster = TpuCluster()
        latency = cluster.join_racks(2, 0, 1)
        assert latency == pytest.approx(20e-3)
        assert cluster.ocs_planes[2].circuit_count == 32  # 16 columns x 2
