"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.cost_model import (
    bucket_reduce_scatter,
    reduce_scatter_lower_bound,
    ring_reduce_scatter,
    simultaneous_bucket_beta_factor,
)
from repro.collectives.ring import snake_order
from repro.phy.units import db_to_linear, linear_to_db
from repro.sim.flows import Flow, max_min_rates
from repro.topology.slices import Slice
from repro.topology.torus import Torus

# -- strategies --------------------------------------------------------------

torus_shapes = st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4)

even_extents = st.sampled_from([2, 4])


@st.composite
def slices_with_rack(draw):
    """An even-extent 3D rack with a valid slice inside it."""
    rack_shape = tuple(draw(even_extents) for _ in range(3))
    rack = Torus(rack_shape)
    shape = tuple(
        draw(st.integers(min_value=1, max_value=ext)) for ext in rack_shape
    )
    offset = tuple(
        draw(st.integers(min_value=0, max_value=ext - 1)) for ext in rack_shape
    )
    return Slice(name="p", rack=rack, offset=offset, shape=shape)


# -- torus invariants ----------------------------------------------------------


class TestTorusProperties:
    @given(torus_shapes)
    @settings(max_examples=40, deadline=None)
    def test_link_count_formula(self, shape):
        torus = Torus(shape)
        expected = 0
        for d, ext in enumerate(shape):
            if ext == 1:
                continue
            cables = torus.node_count if ext > 2 else torus.node_count // 2
            expected += 2 * cables
        assert torus.link_count() == expected

    @given(torus_shapes)
    @settings(max_examples=40, deadline=None)
    def test_neighbor_relation_symmetric(self, shape):
        torus = Torus(shape)
        nodes = list(torus.nodes())[:16]
        for node in nodes:
            for neighbor in torus.neighbors(node):
                assert node in torus.neighbors(neighbor)

    @given(torus_shapes, st.integers(0, 10), st.integers(-10, 10))
    @settings(max_examples=60, deadline=None)
    def test_shift_roundtrip(self, shape, node_index, delta):
        torus = Torus(shape)
        nodes = list(torus.nodes())
        node = nodes[node_index % len(nodes)]
        dim = node_index % torus.ndim
        there = torus.shift(node, dim, delta)
        back = torus.shift(there, dim, -delta)
        assert back == node


# -- slice invariants ------------------------------------------------------------


class TestSliceProperties:
    @given(slices_with_rack())
    @settings(max_examples=60, deadline=None)
    def test_chip_count_matches_enumeration(self, slc):
        chips = slc.chips()
        assert len(chips) == slc.chip_count
        assert len(set(chips)) == slc.chip_count

    @given(slices_with_rack())
    @settings(max_examples=60, deadline=None)
    def test_membership_consistent(self, slc):
        member_set = set(slc.chips())
        for node in slc.rack.nodes():
            assert slc.contains(node) == (node in member_set)

    @given(slices_with_rack())
    @settings(max_examples=60, deadline=None)
    def test_usable_dims_subset_of_active(self, slc):
        assert set(slc.usable_dimensions()) <= set(slc.active_dimensions())

    @given(slices_with_rack())
    @settings(max_examples=60, deadline=None)
    def test_utilization_ordering(self, slc):
        assert 0.0 <= slc.electrical_utilization() <= slc.optical_utilization() <= 1.0

    @given(slices_with_rack())
    @settings(max_examples=60, deadline=None)
    def test_snake_order_is_hamiltonian(self, slc):
        order = snake_order(slc)
        assert len(order) == slc.chip_count
        assert set(order) == set(slc.chips())
        # Consecutive chips (and the closing pair, for even-extent first
        # dims) are torus neighbours.
        for a, b in zip(order, order[1:]):
            distance = sum(
                min((x - y) % ext, (y - x) % ext)
                for x, y, ext in zip(a, b, slc.rack.shape)
            )
            assert distance == 1


# -- cost model invariants ----------------------------------------------------------


class TestCostProperties:
    @given(st.integers(2, 64), st.floats(0.05, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_ring_beta_at_least_lower_bound(self, p, fraction):
        cost = ring_reduce_scatter(p, fraction)
        assert cost.beta_factor >= reduce_scatter_lower_bound(p) - 1e-12

    @given(st.lists(st.integers(2, 8), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_simultaneous_equivalence(self, dims):
        assert math.isclose(
            simultaneous_bucket_beta_factor(dims),
            bucket_reduce_scatter(dims, 1.0).beta_factor,
            rel_tol=1e-9,
        )

    @given(st.lists(st.integers(2, 8), min_size=1, max_size=4), st.floats(0.1, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_bucket_beta_scales_inversely_with_fraction(self, dims, fraction):
        full = bucket_reduce_scatter(dims, 1.0).beta_factor
        scaled = bucket_reduce_scatter(dims, fraction).beta_factor
        assert math.isclose(scaled, full / fraction, rel_tol=1e-9)

    @given(st.integers(2, 32))
    @settings(max_examples=40, deadline=None)
    def test_alpha_is_ring_steps(self, p):
        assert ring_reduce_scatter(p).alpha_count == p - 1


# -- unit conversions ---------------------------------------------------------------


class TestUnitProperties:
    @given(st.floats(-60.0, 60.0))
    @settings(max_examples=60, deadline=None)
    def test_db_roundtrip(self, db):
        assert math.isclose(linear_to_db(db_to_linear(db)), db, abs_tol=1e-9)


# -- max-min fairness ----------------------------------------------------------------


class TestFairnessProperties:
    @given(
        st.lists(
            st.tuples(
                st.lists(st.integers(0, 4), min_size=1, max_size=3, unique=True),
                st.floats(1.0, 1000.0),
            ),
            min_size=1,
            max_size=8,
        ),
        st.lists(st.floats(1.0, 100.0), min_size=5, max_size=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_no_link_oversubscribed_and_no_starvation(self, flow_specs, caps):
        capacities = {i: c for i, c in enumerate(caps)}
        flows = [
            Flow(flow_id=i, links=tuple(links), remaining_bytes=volume)
            for i, (links, volume) in enumerate(flow_specs)
        ]
        rates = max_min_rates(flows, capacities)
        for link, cap in capacities.items():
            load = sum(rates[f.flow_id] for f in flows if link in f.links)
            assert load <= cap * (1 + 1e-9)
        for f in flows:
            assert rates[f.flow_id] > 0.0
