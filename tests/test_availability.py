"""Tests for the availability replay (Section 4.2 integrated view)."""

import pytest

from repro.failures.availability import replay_trace
from repro.failures.inject import FailureEvent
from repro.topology.tpu import GlobalChipId

HOUR = 3600.0


def event(t, rack=0, coord=(0, 0, 0)):
    return FailureEvent(time_s=t, chip=GlobalChipId(rack, coord))


class TestReplay:
    def test_no_failures_full_availability(self):
        rack_report, optical_report = replay_trace([], 4096, 24 * HOUR)
        assert rack_report.mean_availability == 1.0
        assert optical_report.mean_availability == 1.0

    def test_single_failure_costs_rack_minutes(self):
        rack_report, optical_report = replay_trace(
            [event(HOUR)], 4096, 24 * HOUR
        )
        # Rack policy: 64 chips out for ~600 s, then 1 chip forever.
        expected_rack = 64 * 600.02 + 1 * (23 * HOUR - 600.02)
        assert rack_report.lost_chip_seconds == pytest.approx(
            expected_rack, rel=1e-3
        )
        # Optical: 4 chips for 3.7 us, then 1 chip forever.
        expected_optical = 4 * 3.7e-6 + 1 * (23 * HOUR - 3.7e-6)
        assert optical_report.lost_chip_seconds == pytest.approx(
            expected_optical, rel=1e-3
        )

    def test_optical_availability_strictly_better(self):
        events = [event(i * HOUR, rack=i) for i in range(5)]
        rack_report, optical_report = replay_trace(events, 4096, 24 * HOUR)
        assert optical_report.mean_availability > rack_report.mean_availability

    def test_timeline_covers_horizon(self):
        events = [event(HOUR), event(5 * HOUR, rack=1)]
        rack_report, _ = replay_trace(events, 4096, 24 * HOUR)
        assert rack_report.timeline[0].start_s == 0.0
        assert rack_report.timeline[-1].end_s == 24 * HOUR
        for a, b in zip(rack_report.timeline, rack_report.timeline[1:]):
            assert a.end_s == b.start_s

    def test_capacity_never_exceeds_total(self):
        events = [event(i * HOUR, rack=i) for i in range(8)]
        rack_report, optical_report = replay_trace(events, 4096, 24 * HOUR)
        for report in (rack_report, optical_report):
            for point in report.timeline:
                assert point.available_chips <= report.total_chips

    def test_overlapping_outages_stack(self):
        # Two failures 100 s apart: both racks out simultaneously.
        events = [event(HOUR), event(HOUR + 100.0, rack=1)]
        rack_report, _ = replay_trace(events, 4096, 24 * HOUR)
        lowest = min(p.available_chips for p in rack_report.timeline)
        assert lowest <= 4096 - 128

    def test_failures_beyond_horizon_ignored(self):
        rack_report, _ = replay_trace([event(48 * HOUR)], 4096, 24 * HOUR)
        assert rack_report.lost_chip_seconds == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            replay_trace([], 0, 10.0)
        with pytest.raises(ValueError):
            replay_trace([], 10, 0.0)
