"""Tests for the availability replay (Section 4.2 integrated view)."""

import pytest

from repro.failures.availability import replay_trace
from repro.failures.inject import FailureEvent
from repro.topology.tpu import GlobalChipId

HOUR = 3600.0


def event(t, rack=0, coord=(0, 0, 0)):
    return FailureEvent(time_s=t, chip=GlobalChipId(rack, coord))


class TestReplay:
    def test_no_failures_full_availability(self):
        rack_report, optical_report = replay_trace([], 4096, 24 * HOUR)
        assert rack_report.mean_availability == 1.0
        assert optical_report.mean_availability == 1.0

    def test_single_failure_costs_rack_minutes(self):
        rack_report, optical_report = replay_trace(
            [event(HOUR)], 4096, 24 * HOUR
        )
        # Rack policy: 64 chips out for ~600 s, then 1 chip forever.
        expected_rack = 64 * 600.02 + 1 * (23 * HOUR - 600.02)
        assert rack_report.lost_chip_seconds == pytest.approx(
            expected_rack, rel=1e-3
        )
        # Optical: 4 chips for 3.7 us, then 1 chip forever.
        expected_optical = 4 * 3.7e-6 + 1 * (23 * HOUR - 3.7e-6)
        assert optical_report.lost_chip_seconds == pytest.approx(
            expected_optical, rel=1e-3
        )

    def test_optical_availability_strictly_better(self):
        events = [event(i * HOUR, rack=i) for i in range(5)]
        rack_report, optical_report = replay_trace(events, 4096, 24 * HOUR)
        assert optical_report.mean_availability > rack_report.mean_availability

    def test_timeline_covers_horizon(self):
        events = [event(HOUR), event(5 * HOUR, rack=1)]
        rack_report, _ = replay_trace(events, 4096, 24 * HOUR)
        assert rack_report.timeline[0].start_s == 0.0
        assert rack_report.timeline[-1].end_s == 24 * HOUR
        for a, b in zip(rack_report.timeline, rack_report.timeline[1:]):
            assert a.end_s == b.start_s

    def test_capacity_never_exceeds_total(self):
        events = [event(i * HOUR, rack=i) for i in range(8)]
        rack_report, optical_report = replay_trace(events, 4096, 24 * HOUR)
        for report in (rack_report, optical_report):
            for point in report.timeline:
                assert point.available_chips <= report.total_chips

    def test_overlapping_outages_stack(self):
        # Two failures 100 s apart: both racks out simultaneously.
        events = [event(HOUR), event(HOUR + 100.0, rack=1)]
        rack_report, _ = replay_trace(events, 4096, 24 * HOUR)
        lowest = min(p.available_chips for p in rack_report.timeline)
        assert lowest <= 4096 - 128

    def test_failures_beyond_horizon_ignored(self):
        rack_report, _ = replay_trace([event(48 * HOUR)], 4096, 24 * HOUR)
        assert rack_report.lost_chip_seconds == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            replay_trace([], 0, 10.0)
        with pytest.raises(ValueError):
            replay_trace([], 10, 0.0)


class TestOverlapAccounting:
    """Same-blast-unit overlaps must not double-count the unit's chips.

    The pre-fix replay summed per-event capacity deltas, so two failures
    in the same rack inside one migration window took 128 chips out of a
    64-chip rack. The interval-set accounting caps each unit at its
    blast size.
    """

    def test_same_rack_failures_inside_one_window(self):
        # Both failures hit rack 0 within the ~600 s migration window:
        # the rack is out once, not twice.
        events = [event(HOUR), event(HOUR + 100.0, coord=(1, 0, 0))]
        rack_report, _ = replay_trace(events, 4096, 24 * HOUR)
        lowest = min(p.available_chips for p in rack_report.timeline)
        assert lowest == 4096 - 64

    def test_same_server_optical_overlap(self):
        # (0,0,0) and (1,0,0) share a 2x2x1 server: one stall, 4 chips.
        events = [event(HOUR), event(HOUR + 1e-6, coord=(1, 0, 0))]
        _, optical_report = replay_trace(events, 4096, 24 * HOUR)
        lowest = min(p.available_chips for p in optical_report.timeline)
        assert lowest == 4096 - 4

    def test_permanent_loss_capped_at_blast_size(self):
        # Every chip of rack 0's server (0,0,0) fails; after the outage
        # windows close the permanent loss cannot exceed the unit size.
        events = [
            event(HOUR, coord=(0, 0, 0)),
            event(HOUR + 1.0, coord=(1, 0, 0)),
            event(HOUR + 2.0, coord=(0, 1, 0)),
            event(HOUR + 3.0, coord=(1, 1, 0)),
        ]
        _, optical_report = replay_trace(events, 4096, 24 * HOUR)
        final = optical_report.timeline[-1]
        assert final.available_chips == 4096 - 4
        for point in optical_report.timeline:
            assert 0 <= point.available_chips <= 4096

    def test_report_constructor_rejects_invariant_violations(self):
        from repro.failures.availability import (
            AvailabilityPoint,
            AvailabilityReport,
        )

        with pytest.raises(ValueError):
            AvailabilityReport(
                policy="x",
                total_chips=64,
                horizon_s=10.0,
                timeline=(AvailabilityPoint(0.0, 10.0, -1),),
                lost_chip_seconds=0.0,
            )
        with pytest.raises(ValueError):
            AvailabilityReport(
                policy="x",
                total_chips=64,
                horizon_s=10.0,
                timeline=(AvailabilityPoint(0.0, 10.0, 64),),
                lost_chip_seconds=-5.0,
            )
