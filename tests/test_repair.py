"""Tests for optical failure repair (paper Figure 7)."""

import pytest

from repro.core.fabric import LightpathRackFabric
from repro.core.repair import (
    RepairError,
    broken_rings,
    plan_optical_repair,
)
from repro.topology.slices import Slice, SliceAllocator
from repro.topology.tpu import TpuRack


@pytest.fixture
def scenario():
    """Figure 6a/7-style rack: Slice-3 (z=0), Slice-4 (z=1..2), free z=3."""
    rack = TpuRack(0)
    fabric = LightpathRackFabric(rack)
    allocator = SliceAllocator(rack.torus)
    slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))
    return fabric, allocator, slice3


class TestBrokenRings:
    def test_one_ring_per_active_dimension(self, scenario):
        _fabric, _allocator, slice3 = scenario
        rings = broken_rings(slice3, (1, 2, 0))
        assert {r.dim for r in rings} == {0, 1}

    def test_neighbours_flank_failed_chip(self, scenario):
        _fabric, _allocator, slice3 = scenario
        rings = broken_rings(slice3, (1, 2, 0))
        x_ring = next(r for r in rings if r.dim == 0)
        assert x_ring.predecessor == (0, 2, 0)
        assert x_ring.successor == (2, 2, 0)

    def test_failed_chip_must_be_member(self, scenario):
        _fabric, _allocator, slice3 = scenario
        with pytest.raises(ValueError):
            broken_rings(slice3, (0, 0, 3))


class TestOpticalRepair:
    def test_repair_succeeds(self, scenario):
        fabric, allocator, slice3 = scenario
        plan = plan_optical_repair(fabric, allocator, slice3, (1, 2, 0))
        assert plan.failed == (1, 2, 0)
        assert plan.replacement in allocator.free_chips()
        assert plan.setup_latency_s == pytest.approx(3.7e-6)

    def test_repair_builds_circuits_for_each_broken_ring(self, scenario):
        fabric, allocator, slice3 = scenario
        plan = plan_optical_repair(fabric, allocator, slice3, (1, 2, 0))
        # Two broken rings -> up to 4 endpoint pairs (deduplicated).
        assert 2 <= len(plan.circuits) <= 4
        endpoints = {(c.src, c.dst) for c in plan.circuits}
        assert all(
            plan.replacement in pair for pair in endpoints
        )

    def test_blast_radius_is_one_chip(self, scenario):
        fabric, allocator, slice3 = scenario
        plan = plan_optical_repair(fabric, allocator, slice3, (1, 2, 0))
        assert plan.blast_radius_chips == 1

    def test_failed_chip_marked_in_rack(self, scenario):
        fabric, allocator, slice3 = scenario
        plan_optical_repair(fabric, allocator, slice3, (1, 2, 0))
        assert fabric.rack.is_failed((1, 2, 0))

    def test_explicit_replacement(self, scenario):
        fabric, allocator, slice3 = scenario
        plan = plan_optical_repair(
            fabric, allocator, slice3, (1, 2, 0), replacement=(0, 0, 3)
        )
        assert plan.replacement == (0, 0, 3)

    def test_allocated_replacement_rejected(self, scenario):
        fabric, allocator, slice3 = scenario
        with pytest.raises(RepairError):
            plan_optical_repair(
                fabric, allocator, slice3, (1, 2, 0), replacement=(0, 0, 1)
            )

    def test_no_free_chip_fails(self):
        rack = TpuRack(0)
        fabric = LightpathRackFabric(rack)
        allocator = SliceAllocator(rack.torus)
        slc = allocator.allocate("everything", (4, 4, 4), (0, 0, 0))
        with pytest.raises(RepairError):
            plan_optical_repair(fabric, allocator, slc, (0, 0, 0))

    def test_nearest_spare_minimizes_fibers(self, scenario):
        fabric, allocator, slice3 = scenario
        plan = plan_optical_repair(fabric, allocator, slice3, (1, 2, 0))
        # The chosen spare's server should be as close as any free chip's.
        from repro.core.repair import _server_distance

        failed_server = fabric.server_of((1, 2, 0))
        best = min(
            _server_distance(fabric, failed_server, fabric.server_of(c))
            for c in allocator.free_chips()
        )
        chosen = _server_distance(
            fabric, failed_server, fabric.server_of(plan.replacement)
        )
        assert chosen == best

    def test_circuits_are_resource_disjoint(self, scenario):
        fabric, allocator, slice3 = scenario
        plan = plan_optical_repair(fabric, allocator, slice3, (1, 2, 0))
        assert fabric.fibers_in_use() == plan.fibers_used
        assert fabric.is_congestion_free()
