"""Tests for the cross-tenant congestion report (Figure 5b)."""

from repro.analysis.congestion_report import (
    analyze_rack_congestion,
    congestion_multiplicity_histogram,
)
from repro.analysis.utilization import figure5b_layout
from repro.topology.slices import SliceAllocator
from repro.topology.torus import Torus


class TestFigure5bCongestion:
    def test_naive_rings_collide(self):
        report = analyze_rack_congestion(figure5b_layout())
        assert not report.is_congestion_free
        assert report.worst_multiplicity >= 2

    def test_slice1_and_slice2_share_y_wraps(self):
        report = analyze_rack_congestion(figure5b_layout())
        assert 1 in report.congested_dimensions("Slice-1")
        assert 1 in report.congested_dimensions("Slice-2")

    def test_shared_links_name_both_users(self):
        report = analyze_rack_congestion(figure5b_layout())
        for shared in report.shared_links:
            assert shared.multiplicity == len(shared.users)
            assert shared.multiplicity >= 2

    def test_restricting_to_usable_dims_removes_congestion(self):
        allocator = figure5b_layout()
        dims = {s.name: s.usable_dimensions() for s in allocator.slices}
        report = analyze_rack_congestion(allocator, dims_per_slice=dims)
        assert report.is_congestion_free

    def test_single_tenant_rack_congestion_free(self):
        allocator = SliceAllocator(Torus((4, 4, 4)))
        allocator.allocate("full", (4, 4, 4), (0, 0, 0))
        report = analyze_rack_congestion(allocator)
        assert report.is_congestion_free

    def test_unlisted_slice_defaults_to_active_dims(self):
        allocator = figure5b_layout()
        report = analyze_rack_congestion(
            allocator, dims_per_slice={"Slice-1": [0]}
        )
        # Slice-1 restricted to X; the others still collide among
        # themselves (Slice-2's Y wrap crosses Slice-1's unused Y links
        # but no one else's -> check it still reports something for the
        # remaining naive tenants).
        assert "Slice-1" not in report.per_slice_congested_dims


class TestHistogram:
    def test_histogram_counts_match_report(self):
        report = analyze_rack_congestion(figure5b_layout())
        histogram = congestion_multiplicity_histogram(report)
        assert sum(histogram.values()) == len(report.shared_links)
        assert all(k >= 2 for k in histogram)

    def test_empty_histogram_when_clean(self):
        allocator = SliceAllocator(Torus((4, 4, 4)))
        allocator.allocate("full", (4, 4, 4), (0, 0, 0))
        report = analyze_rack_congestion(allocator)
        assert congestion_multiplicity_histogram(report) == {}
