"""Tests for executing collective schedules on the fluid simulator."""

import pytest

from repro.collectives.cost_model import CostParameters
from repro.collectives.primitives import (
    Interconnect,
    build_reduce_scatter_schedule,
    plan_reduce_scatter,
    reduce_scatter_cost,
)
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.sim.runner import run_concurrent_schedules, run_schedule
from repro.topology.slices import Slice
from repro.topology.torus import Torus


@pytest.fixture
def rack():
    return Torus((4, 4, 4))


def capacities(rack, per_link):
    return {link: per_link for link in rack.links()}


class TestSingleSchedule:
    @pytest.mark.parametrize("shape", [(4, 2, 1), (4, 4, 1)])
    @pytest.mark.parametrize(
        "interconnect", [Interconnect.ELECTRICAL, Interconnect.OPTICAL]
    )
    def test_measured_matches_closed_form(self, rack, shape, interconnect):
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=shape)
        n_bytes = 1 << 24
        strategy = plan_reduce_scatter(slc, interconnect)
        schedule = build_reduce_scatter_schedule(slc, n_bytes, interconnect)
        caps = capacities(rack, CHIP_EGRESS_BYTES * strategy.bandwidth_fraction)
        params = CostParameters()
        result = run_schedule(schedule, caps, params.alpha_s, params.reconfig_s)
        symbolic = reduce_scatter_cost(slc, interconnect).seconds(n_bytes, params)
        assert result.duration_s == pytest.approx(symbolic, rel=1e-6)

    def test_components_add_up(self, rack):
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 2, 1))
        schedule = build_reduce_scatter_schedule(slc, 1 << 20, Interconnect.OPTICAL)
        caps = capacities(rack, CHIP_EGRESS_BYTES)
        result = run_schedule(schedule, caps)
        assert result.duration_s == pytest.approx(
            result.transfer_s + result.alpha_s + result.reconfig_s
        )
        assert result.reconfig_s == pytest.approx(3.7e-6)

    def test_phase_durations_recorded(self, rack):
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 2, 1))
        schedule = build_reduce_scatter_schedule(slc, 1 << 20, Interconnect.OPTICAL)
        result = run_schedule(schedule, capacities(rack, CHIP_EGRESS_BYTES))
        assert len(result.phase_durations_s) == len(schedule.phases)
        assert all(d > 0 for d in result.phase_durations_s)


class TestConcurrentSchedules:
    def test_disjoint_tenants_unaffected(self, rack):
        a = Slice(name="a", rack=rack, offset=(0, 0, 0), shape=(4, 1, 1))
        b = Slice(name="b", rack=rack, offset=(0, 2, 2), shape=(4, 1, 1))
        n = 1 << 22
        caps = capacities(rack, CHIP_EGRESS_BYTES / 3)
        schedules = [
            build_reduce_scatter_schedule(a, n, Interconnect.ELECTRICAL),
            build_reduce_scatter_schedule(b, n, Interconnect.ELECTRICAL),
        ]
        results = run_concurrent_schedules(schedules, caps)
        solo = run_schedule(schedules[0], caps)
        for result in results:
            assert result.duration_s == pytest.approx(solo.duration_s, rel=1e-6)

    def test_contending_tenants_slow_down(self, rack):
        # Two tenants deliberately ringing over the same X column links.
        a = Slice(name="a", rack=rack, offset=(0, 0, 0), shape=(4, 2, 1))
        b = Slice(name="b", rack=rack, offset=(0, 2, 0), shape=(4, 2, 1))
        n = 1 << 22
        caps = capacities(rack, CHIP_EGRESS_BYTES / 3)
        # Force both to bucket over Y: their wrap paths collide.
        from repro.collectives.bucket import bucket_reduce_scatter_schedule

        schedules = [
            bucket_reduce_scatter_schedule(a, n, dims=[1], owner="a"),
            bucket_reduce_scatter_schedule(b, n, dims=[1], owner="b"),
        ]
        contended = run_concurrent_schedules(schedules, caps)
        solo = run_schedule(schedules[0], caps)
        assert contended[0].duration_s > solo.duration_s * 1.2

    def test_result_order_matches_input(self, rack):
        a = Slice(name="a", rack=rack, offset=(0, 0, 0), shape=(4, 1, 1))
        b = Slice(name="b", rack=rack, offset=(0, 2, 2), shape=(2, 1, 1))
        caps = capacities(rack, CHIP_EGRESS_BYTES / 3)
        schedules = [
            build_reduce_scatter_schedule(a, 1 << 20, Interconnect.ELECTRICAL),
            build_reduce_scatter_schedule(b, 1 << 20, Interconnect.ELECTRICAL),
        ]
        results = run_concurrent_schedules(schedules, caps)
        assert results[0].name == schedules[0].name
        assert results[1].name == schedules[1].name


class TestRunnerTelemetry:
    def test_run_schedule_result_identical_with_telemetry(self, rack):
        # Instrumentation is observation-only: the ScheduleResult must be
        # exactly equal (not approx) to the uninstrumented run's.
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 2, 1))
        schedule = build_reduce_scatter_schedule(slc, 1 << 20, Interconnect.OPTICAL)
        caps = capacities(rack, CHIP_EGRESS_BYTES)
        plain = run_schedule(schedule, caps)
        observed, _ = run_schedule(schedule, caps, telemetry=True)
        assert observed == plain

    def test_run_schedule_telemetry_accounts_all_bytes(self, rack):
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 1, 1))
        n = 1 << 20
        schedule = build_reduce_scatter_schedule(slc, n, Interconnect.OPTICAL)
        caps = capacities(rack, CHIP_EGRESS_BYTES)
        _, telemetry = run_schedule(schedule, caps, telemetry=True)
        total = sum(telemetry.carried_bytes(link) for link in caps)
        moved = sum(
            t.n_bytes for phase in schedule.phases for t in phase.transfers
        )
        assert total == pytest.approx(moved)

    def test_concurrent_results_identical_with_telemetry(self, rack):
        a = Slice(name="a", rack=rack, offset=(0, 0, 0), shape=(4, 1, 1))
        b = Slice(name="b", rack=rack, offset=(0, 2, 2), shape=(4, 1, 1))
        caps = capacities(rack, CHIP_EGRESS_BYTES / 3)
        schedules = [
            build_reduce_scatter_schedule(a, 1 << 20, Interconnect.ELECTRICAL),
            build_reduce_scatter_schedule(b, 1 << 20, Interconnect.ELECTRICAL),
        ]
        plain = run_concurrent_schedules(schedules, caps)
        observed, telemetry = run_concurrent_schedules(
            schedules, caps, telemetry=True
        )
        assert observed == plain
        assert any(telemetry.carried_bytes(link) > 0 for link in caps)


class TestConcurrentEdgeCases:
    def test_empty_schedule_list_returns_empty(self, rack):
        caps = capacities(rack, CHIP_EGRESS_BYTES)
        assert run_concurrent_schedules([], caps) == []

    def test_empty_schedule_list_ignores_capacities(self):
        assert run_concurrent_schedules([], {}) == []

    def test_single_zero_byte_phase(self, rack):
        # A phase whose only transfer carries zero bytes moves no data but
        # still charges the per-step alpha overhead.
        from repro.collectives.schedule import CollectiveSchedule, Phase, Transfer

        alpha = 1e-6
        transfer = Transfer(
            src=(0, 0, 0),
            dst=(1, 0, 0),
            n_bytes=0.0,
            path=((0, 0, 0), (1, 0, 0)),
            owner="idle",
        )
        schedule = CollectiveSchedule("zero", [Phase([transfer], label="z0")])
        caps = capacities(rack, CHIP_EGRESS_BYTES)
        [result] = run_concurrent_schedules([schedule], caps, alpha_s=alpha)
        assert result.transfer_s == pytest.approx(0.0)
        assert tuple(result.phase_durations_s) == (pytest.approx(0.0),)
        assert result.alpha_s == pytest.approx(alpha)
        assert result.duration_s == pytest.approx(alpha)

    def test_zero_byte_phase_does_not_delay_other_tenant(self, rack):
        from repro.collectives.schedule import CollectiveSchedule, Phase, Transfer

        zero = CollectiveSchedule(
            "zero",
            [Phase([Transfer((0, 0, 0), (1, 0, 0), 0.0,
                             ((0, 0, 0), (1, 0, 0)))])],
        )
        slc = Slice(name="b", rack=rack, offset=(0, 2, 2), shape=(4, 1, 1))
        busy = build_reduce_scatter_schedule(slc, 1 << 20, Interconnect.ELECTRICAL)
        caps = capacities(rack, CHIP_EGRESS_BYTES / 3)
        solo = run_schedule(busy, caps)
        zero_result, busy_result = run_concurrent_schedules([zero, busy], caps)
        assert busy_result.duration_s == pytest.approx(solo.duration_s, rel=1e-6)
        assert zero_result.transfer_s == pytest.approx(0.0)
