"""The kernels layer: selection, incidence, and backend bit-identity.

The vectorized backend's entire contract is "bit-identical to the
reference, only faster" — so nearly every test here runs both backends
on the same input and asserts *exact* equality (``==`` on floats, not
``approx``): water-filling rates, bucket stage costs, repair attempts,
telemetry timelines. Randomized inputs come from hypothesis; the
degenerate corners (single flow, single link, all-capped, duplicate
links) are pinned explicitly.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    FabricSession,
    FailurePlan,
    ScenarioSpec,
    code_fingerprint,
    figure6_slices,
)
from repro.collectives.cost_model import _bucket_stages
from repro.failures.recovery import ElectricalRecoveryAnalysis
from repro.kernels import (
    DEFAULT_KERNEL,
    KERNEL_ENV_VAR,
    KERNELS,
    KernelStats,
    STATS,
    active_kernel,
    set_default_kernel,
    use_kernel,
)
from repro.kernels.incidence import FlowIncidence, LinkSpace
from repro.kernels.stagecosts import bucket_stage_arrays
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import EventEngine
from repro.sim.flows import Flow, max_min_rates, max_min_rates_reference
from repro.sim.network import FlowNetwork
from repro.sim.telemetry import InstrumentedNetwork, LinkTelemetry
from repro.topology.slices import SliceAllocator
from repro.topology.torus import Torus

# -- selection machinery -------------------------------------------------------


class TestKernelSelection:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert active_kernel() == DEFAULT_KERNEL == "vectorized"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert active_kernel() == "reference"

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "simd")
        with pytest.raises(ValueError, match="unknown kernel 'simd'"):
            active_kernel()

    def test_use_kernel_overrides_and_restores(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        with use_kernel("reference"):
            assert active_kernel() == "reference"
            with use_kernel("vectorized"):
                assert active_kernel() == "vectorized"
            assert active_kernel() == "reference"
        assert active_kernel() == DEFAULT_KERNEL

    def test_use_kernel_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_kernel("reference"):
                raise RuntimeError("boom")
        assert active_kernel() == DEFAULT_KERNEL

    def test_use_kernel_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            with use_kernel("gpu"):
                pass  # pragma: no cover

    def test_set_default_kernel_exports_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, DEFAULT_KERNEL)
        set_default_kernel("reference")
        assert os.environ[KERNEL_ENV_VAR] == "reference"
        assert active_kernel() == "reference"

    def test_fingerprint_differs_by_kernel(self):
        with use_kernel("reference"):
            reference = code_fingerprint()
        with use_kernel("vectorized"):
            vectorized = code_fingerprint()
        assert reference != vectorized

    def test_stats_accounting(self):
        stats = KernelStats()
        stats.record("waterfill", 0.5, kernel="vectorized")
        stats.record("waterfill", 0.25, kernel="vectorized")
        snap = stats.snapshot()
        assert snap == {"vectorized.waterfill": {"calls": 2, "seconds": 0.75}}
        stats.reset()
        assert stats.snapshot() == {}


# -- incidence building blocks -------------------------------------------------


class TestIncidence:
    def test_link_space_orders_by_insertion(self):
        space = LinkSpace({"b": 1.0, "a": 2.0, "c": 3.0})
        assert space.links == ["b", "a", "c"]
        assert space.index == {"b": 0, "a": 1, "c": 2}
        assert space.caps.tolist() == [1.0, 2.0, 3.0]
        assert len(space) == 3

    def test_indices_preserve_request_order(self):
        space = LinkSpace({"b": 1.0, "a": 2.0})
        assert space.indices(("a", "b", "a")).tolist() == [1, 0, 1]

    def test_indices_raise_bare_keyerror(self):
        space = LinkSpace({"a": 1.0})
        with pytest.raises(KeyError):
            space.indices(("a", "zzz"))

    def test_flow_incidence_csr(self):
        space = LinkSpace({"a": 1.0, "b": 1.0, "c": 1.0})
        inc = FlowIncidence(
            [space.indices(("a", "c")), space.indices(("b",))]
        )
        assert inc.flow_count == 2
        assert inc.lengths.tolist() == [2, 1]
        assert inc.flat.tolist() == [0, 2, 1]
        assert inc.seg.tolist() == [0, 0, 1]

    def test_flow_incidence_empty(self):
        inc = FlowIncidence([])
        assert inc.flow_count == 0
        assert inc.flat.size == 0
        assert inc.seg.size == 0


# -- water-filling bit-identity ------------------------------------------------


@st.composite
def waterfill_problems(draw):
    """Random capacities + flows, duplicates and demand caps included."""
    n_links = draw(st.integers(min_value=1, max_value=6))
    caps = {
        f"L{i}": draw(
            st.floats(min_value=0.25, max_value=64.0, allow_nan=False)
        )
        for i in range(n_links)
    }
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for i in range(n_flows):
        links = tuple(
            draw(
                st.lists(
                    st.sampled_from(sorted(caps)),
                    min_size=1,
                    max_size=2 * n_links,  # duplicates allowed
                )
            )
        )
        demand = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.01, max_value=32.0, allow_nan=False),
            )
        )
        flows.append((f"f{i}", links, demand))
    return caps, flows


def _build(flows):
    return [
        Flow(
            flow_id=fid,
            links=links,
            remaining_bytes=1.0,
            demand_bytes_per_s=demand,
        )
        for fid, links, demand in flows
    ]


def _both_backends(caps, flows):
    """Run both backends on independent flow copies; return both results."""
    ref_flows, vec_flows = _build(flows), _build(flows)
    with use_kernel("reference"):
        ref = max_min_rates(ref_flows, dict(caps))
    with use_kernel("vectorized"):
        vec = max_min_rates(vec_flows, dict(caps))
    return ref, vec, ref_flows, vec_flows


class TestWaterfillIdentity:
    @given(waterfill_problems())
    @settings(max_examples=200, deadline=None)
    def test_random_problems_bit_identical(self, problem):
        caps, flows = problem
        ref, vec, ref_flows, vec_flows = _both_backends(caps, flows)
        assert ref == vec  # exact float equality, not approx
        for a, b in zip(ref_flows, vec_flows):
            assert a.rate_bytes_per_s == b.rate_bytes_per_s

    def test_single_flow_single_link(self):
        ref, vec, _, _ = _both_backends(
            {"L0": 7.0}, [("f0", ("L0",), None)]
        )
        assert ref == vec == {"f0": 7.0}

    def test_all_flows_demand_capped(self):
        caps = {"L0": 100.0, "L1": 100.0}
        flows = [
            ("f0", ("L0", "L1"), 1.5),
            ("f1", ("L1",), 2.5),
            ("f2", ("L0",), 0.5),
        ]
        ref, vec, _, _ = _both_backends(caps, flows)
        assert ref == vec == {"f0": 1.5, "f1": 2.5, "f2": 0.5}

    def test_duplicate_links_within_flow(self):
        # A flow crossing the same link twice debits it twice.
        caps = {"L0": 6.0, "L1": 6.0}
        flows = [("f0", ("L0", "L0", "L1"), None), ("f1", ("L0",), None)]
        ref, vec, _, _ = _both_backends(caps, flows)
        assert ref == vec

    def test_empty_flow_list(self):
        with use_kernel("vectorized"):
            assert max_min_rates([], {"L0": 1.0}) == {}
        with use_kernel("reference"):
            assert max_min_rates([], {"L0": 1.0}) == {}

    def test_dispatcher_agrees_with_reference_function(self):
        caps = {"a": 3.0, "b": 2.0}
        flows = [("x", ("a", "b"), None), ("y", ("b",), None)]
        direct = max_min_rates_reference(_build(flows), dict(caps))
        with use_kernel("vectorized"):
            vec = max_min_rates(_build(flows), dict(caps))
        assert direct == vec

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_unknown_link_error_parity(self, kernel):
        flows = _build([("f0", ("L0", "mystery"), None)])
        with use_kernel(kernel):
            with pytest.raises(KeyError) as err:
                max_min_rates(flows, {"L0": 1.0})
        assert err.value.args[0] == (
            "flow 'f0' uses unknown link 'mystery'"
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_non_positive_capacity_error_parity(self, kernel):
        flows = _build([("f0", ("L0",), None)])
        with use_kernel(kernel):
            with pytest.raises(
                ValueError, match=r"link 'L1' has non-positive capacity 0"
            ):
                max_min_rates(flows, {"L0": 1.0, "L1": 0.0})

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_zeroed_demand_cap_error_parity(self, kernel):
        flows = _build([("f0", ("L0",), 1.0)])
        flows[0].demand_bytes_per_s = 0.0  # bypass Flow's own validation
        with use_kernel(kernel):
            with pytest.raises(
                ValueError, match="non-positive demand cap"
            ):
                max_min_rates(flows, {"L0": 1.0})


# -- bucket stage costs --------------------------------------------------------

dims_lists = st.lists(
    st.integers(min_value=2, max_value=8), min_size=1, max_size=4
)
fractions = st.sampled_from([1.0, 0.5, 1.0 / 3.0, 0.7])


class TestStageCostIdentity:
    @given(dims_lists, fractions)
    @settings(max_examples=100, deadline=None)
    def test_stages_bit_identical(self, dims, fraction):
        with use_kernel("reference"):
            ref = _bucket_stages(list(dims), fraction)
        with use_kernel("vectorized"):
            vec = _bucket_stages(list(dims), fraction)
        assert ref == vec  # CollectiveCost dataclass equality, exact floats

    def test_stage_arrays_shapes(self):
        alphas, buffer_fractions, betas = bucket_stage_arrays((4, 4, 2), 1.0)
        assert list(alphas) == [3, 3, 1]
        assert list(buffer_fractions) == [1.0, 0.25, 0.0625]
        assert betas[0] == (4 - 1) / 4

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_validation_parity(self, kernel):
        with use_kernel(kernel):
            with pytest.raises(ValueError, match="at least one dimension"):
                _bucket_stages([], 1.0)
            with pytest.raises(ValueError, match=">= 2 chips"):
                _bucket_stages([4, 1], 1.0)


# -- repair path search --------------------------------------------------------


def _figure6_analysis(max_hops=4):
    torus = Torus((4, 4, 4))
    allocator = SliceAllocator(torus)
    allocator.allocate("Slice-A", (4, 4, 2), (0, 0, 0))
    allocator.allocate("Slice-B", (4, 2, 2), (0, 0, 2))
    return ElectricalRecoveryAnalysis(torus, allocator, max_hops=max_hops)


class TestRepairIdentity:
    def test_evaluate_all_free_chips_identical(self):
        analysis = _figure6_analysis()
        slc = analysis.allocator.slices[0]
        failed = (1, 2, 0)
        with use_kernel("reference"):
            ref = analysis.evaluate_all_free_chips(slc, failed)
        with use_kernel("vectorized"):
            vec = analysis.evaluate_all_free_chips(slc, failed)
        assert ref == vec  # dataclass equality: paths, congestion, feasibility

    def test_evaluate_single_chip_identical(self):
        analysis = _figure6_analysis()
        slc = analysis.allocator.slices[0]
        failed, free_chip = (1, 2, 0), (0, 2, 2)
        with use_kernel("reference"):
            ref = analysis.evaluate_free_chip(slc, failed, free_chip)
        with use_kernel("vectorized"):
            vec = analysis.evaluate_free_chip(slc, failed, free_chip)
        assert ref == vec

    def test_failed_chip_as_candidate_uses_reference_path(self):
        # free_chip == failed is outside the kernel's contract; the
        # dispatcher must fall back and still agree with the reference.
        analysis = _figure6_analysis()
        slc = analysis.allocator.slices[0]
        failed = (1, 2, 0)
        with use_kernel("vectorized"):
            vec = analysis.evaluate_free_chip(slc, failed, failed)
        ref = analysis._evaluate_free_chip_reference(slc, failed, failed)
        assert ref == vec

    def test_ring_link_indices_match_ring_links(self):
        analysis = _figure6_analysis()
        slc = analysis.allocator.slices[1]
        kernel = slc.rack.index_kernel()
        for dim in range(slc.rack.ndim):
            ids = slc.ring_link_indices(dim)
            assert [kernel.links[i] for i in ids] == slc.ring_links(dim)

    def test_index_kernel_is_memoized(self):
        assert Torus((4, 4, 4)).index_kernel() is Torus(
            (4, 4, 4)
        ).index_kernel()


# -- fluid network + telemetry -------------------------------------------------


def _run_schedule(kernel, instrumented):
    with use_kernel(kernel):
        engine = EventEngine()
        caps = {"a": 4.0, "b": 2.0, "c": 8.0}
        cls = InstrumentedNetwork if instrumented else FlowNetwork
        network = cls(engine, caps)
        network.inject(Flow("f0", ("a", "b"), 16.0))
        network.inject(Flow("f1", ("b", "c"), 8.0, demand_bytes_per_s=0.75))
        network.inject(
            Flow("f2", ("a",), 12.0),
            on_complete=lambda rec: network.inject(Flow("f3", ("c",), 4.0)),
        )
        network.run_until_idle()
    return network


class TestNetworkIdentity:
    def test_completion_times_bit_identical(self):
        ref = _run_schedule("reference", instrumented=False)
        vec = _run_schedule("vectorized", instrumented=False)
        assert [r.flow.flow_id for r in ref.records] == [
            r.flow.flow_id for r in vec.records
        ]
        for a, b in zip(ref.records, vec.records):
            assert a.start_s == b.start_s
            assert a.finish_s == b.finish_s

    def test_telemetry_timelines_bit_identical(self):
        ref = _run_schedule("reference", instrumented=True)
        vec = _run_schedule("vectorized", instrumented=True)
        for link in ref.capacities:
            assert ref.telemetry.samples(link) == vec.telemetry.samples(link)
            assert ref.telemetry.carried_bytes(
                link
            ) == vec.telemetry.carried_bytes(link)
        assert ref.telemetry.busiest_links() == vec.telemetry.busiest_links()
        assert ref.telemetry.idle_links() == vec.telemetry.idle_links()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_zeroed_cap_error_parity_via_network(self, kernel):
        with use_kernel(kernel):
            engine = EventEngine()
            network = FlowNetwork(engine, {"a": 4.0})
            network.inject(Flow("f0", ("a",), 8.0))
            flow = Flow("f1", ("a",), 8.0, demand_bytes_per_s=1.0)
            flow.demand_bytes_per_s = 0.0  # mutate past validation
            with pytest.raises(ValueError, match="non-positive demand cap"):
                network.inject(flow)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_unknown_link_error_parity_via_network(self, kernel):
        with use_kernel(kernel):
            engine = EventEngine()
            network = FlowNetwork(engine, {"a": 4.0})
            with pytest.raises(
                KeyError, match="uses unknown link 'ghost'"
            ):
                network.inject(Flow("f0", ("a", "ghost"), 8.0))

    def test_capacity_added_mid_run_is_picked_up(self):
        # The cached LinkSpace must rebuild when the universe changes.
        with use_kernel("vectorized"):
            engine = EventEngine()
            network = FlowNetwork(engine, {"a": 4.0})
            network.inject(Flow("f0", ("a",), 4.0))
            network.capacities["b"] = 2.0
            network.inject(Flow("f1", ("b",), 2.0))
            horizon = network.run_until_idle()
        assert horizon == 1.0


class TestLinkTelemetryRegression:
    def test_unknown_link_record_raises(self):
        telemetry = LinkTelemetry(capacities={"a": 1.0})
        with pytest.raises(KeyError, match="no registered capacity"):
            telemetry.record(0.0, 1.0, {"a": 0.5, "ghost": 1.0})
        # The failed record must not have been partially applied.
        assert telemetry.samples("a") == ()
        assert telemetry.carried_bytes("a") == 0

    def test_negative_interval_raises(self):
        telemetry = LinkTelemetry(capacities={"a": 1.0})
        with pytest.raises(ValueError, match="interval end precedes start"):
            telemetry.record(2.0, 1.0, {"a": 0.5})

    def test_zero_interval_is_noop(self):
        telemetry = LinkTelemetry(capacities={"a": 1.0})
        telemetry.record(1.0, 1.0, {"a": 0.5})
        assert telemetry.samples("a") == ()

    def test_unused_link_carries_int_zero(self):
        telemetry = LinkTelemetry(capacities={"a": 1.0})
        carried = telemetry.carried_bytes("a")
        assert carried == 0
        assert isinstance(carried, int)  # sum(()) == 0 semantics preserved

    def test_incremental_totals_match_sample_sum(self):
        telemetry = LinkTelemetry(capacities={"a": 1.0, "b": 2.0})
        telemetry.record(0.0, 1.0, {"a": 0.5, "b": 1.5})
        telemetry.record(1.0, 3.0, {"a": 0.25})
        for link in ("a", "b"):
            assert telemetry.carried_bytes(link) == sum(
                s.carried_bytes for s in telemetry.samples(link)
            )

    def test_idle_links_relative_tolerance(self):
        telemetry = LinkTelemetry(capacities={"busy": 1.0, "drift": 1.0})
        telemetry.record(0.0, 1.0, {"busy": 1e9})
        telemetry.record(0.0, 1.0, {"drift": 1e-12})
        assert telemetry.idle_links() == ["drift"]
        assert telemetry.idle_links(tolerance=1e-25) == []


# -- session integration -------------------------------------------------------


def _repair_spec():
    return ScenarioSpec(
        fabric="electrical",
        slices=figure6_slices(),
        outputs=("repair",),
        failures=FailurePlan(failed_chips=((1, 2, 0),)),
    )


class TestSessionKernelIntegration:
    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel 'simd'"):
            FabricSession(kernel="simd")

    def test_kernel_stats_reported_to_metrics(self):
        registry = MetricsRegistry()
        session = FabricSession(metrics=registry, kernel="vectorized")
        session.run(_repair_spec())
        assert "kernel.vectorized.repair.calls" in registry
        assert "kernel.vectorized.repair.seconds" in registry
        assert registry.counter("kernel.vectorized.repair.calls").value > 0

    def test_session_kernel_pins_backend(self):
        registry = MetricsRegistry()
        with use_kernel("vectorized"):
            session = FabricSession(metrics=registry, kernel="reference")
            session.run(_repair_spec())
        kernel_names = [n for n in registry.names() if n.startswith("kernel.")]
        assert kernel_names  # the reference dispatcher still records time
        assert all(n.startswith("kernel.reference.") for n in kernel_names)

    def test_results_identical_across_session_kernels(self):
        spec = _repair_spec()
        reference = FabricSession(kernel="reference").run(spec)
        vectorized = FabricSession(kernel="vectorized").run(spec)
        assert reference.to_json() == vectorized.to_json()

    def test_kernel_stats_global_accumulator(self):
        before = STATS.snapshot().get(
            "vectorized.waterfill", {"calls": 0}
        )["calls"]
        with use_kernel("vectorized"):
            max_min_rates(
                _build([("f0", ("L0",), None)]), {"L0": 1.0}
            )
        after = STATS.snapshot()["vectorized.waterfill"]["calls"]
        assert after == before + 1
