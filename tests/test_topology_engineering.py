"""Tests for demand-driven topology engineering (paper Section 6)."""

import pytest

from repro.core.topology_engineering import (
    TrafficMatrix,
    engineer_topology,
    evaluate_topology,
    skewed_traffic,
    uniform_mesh,
)
from repro.phy.constants import WAVELENGTH_RATE_BYTES

NODES = [f"g{i}" for i in range(8)]


def matrix(demand):
    return TrafficMatrix(nodes=NODES, demand=demand)


class TestTrafficMatrix:
    def test_total(self):
        m = matrix({("g0", "g1"): 10.0, ("g1", "g2"): 5.0})
        assert m.total_bytes_per_s() == 15.0

    def test_sorted_heaviest_first(self):
        m = matrix({("g0", "g1"): 10.0, ("g1", "g2"): 50.0})
        assert m.sorted_demands()[0][0] == ("g1", "g2")

    def test_validation(self):
        with pytest.raises(ValueError):
            matrix({("g0", "ghost"): 1.0})
        with pytest.raises(ValueError):
            matrix({("g0", "g0"): 1.0})
        with pytest.raises(ValueError):
            matrix({("g0", "g1"): -1.0})
        with pytest.raises(ValueError):
            TrafficMatrix(nodes=["a", "a"], demand={})


class TestEngineering:
    def test_respects_port_limits(self):
        m = skewed_traffic(NODES, heavy_pairs=16, heavy_bytes=1e12)
        topology = engineer_topology(m, ports_per_node=3)
        for node in NODES:
            assert topology.egress_used(node) <= 3
            assert topology.ingress_used(node) <= 3

    def test_heavy_demand_gets_multiple_wavelengths(self):
        m = matrix({("g0", "g1"): 3 * WAVELENGTH_RATE_BYTES})
        topology = engineer_topology(m, ports_per_node=8)
        assert topology.circuits[("g0", "g1")] == 3

    def test_small_demand_gets_one_wavelength(self):
        m = matrix({("g0", "g1"): 1.0})
        topology = engineer_topology(m, ports_per_node=8)
        assert topology.circuits[("g0", "g1")] == 1

    def test_heaviest_admitted_first_under_scarcity(self):
        m = matrix({("g0", "g1"): 100.0, ("g2", "g1"): 50.0})
        # Destination g1 has a single ingress port.
        topology = engineer_topology(m, ports_per_node=1)
        assert ("g0", "g1") in topology.circuits
        assert ("g2", "g1") not in topology.circuits

    def test_invalid_ports_rejected(self):
        with pytest.raises(ValueError):
            engineer_topology(matrix({}), ports_per_node=0)


class TestUniformMesh:
    def test_ports_spread_over_peers(self):
        mesh = uniform_mesh(NODES, ports_per_node=7)
        for node in NODES:
            assert mesh.egress_used(node) == 7
        assert all(count == 1 for count in mesh.circuits.values())

    def test_fewer_ports_than_peers(self):
        mesh = uniform_mesh(NODES, ports_per_node=3)
        for node in NODES:
            assert mesh.egress_used(node) == 3

    def test_two_nodes_minimum(self):
        with pytest.raises(ValueError):
            uniform_mesh(["solo"])


class TestEvaluation:
    def test_engineered_beats_mesh_on_skewed_traffic(self):
        m = skewed_traffic(NODES, heavy_pairs=8, heavy_bytes=100e9, light_bytes=1e9)
        engineered = evaluate_topology(engineer_topology(m, 4), m)
        static = evaluate_topology(uniform_mesh(NODES, 4), m)
        assert engineered.direct_fraction > static.direct_fraction

    def test_uniform_traffic_suits_the_mesh(self):
        demand = {
            (a, b): 1e9 for a in NODES for b in NODES if a != b
        }
        m = matrix(demand)
        static = evaluate_topology(uniform_mesh(NODES, 7), m)
        assert static.direct_fraction == pytest.approx(1.0)
        assert static.mean_hops == pytest.approx(1.0)

    def test_direct_fraction_capped_by_capacity(self):
        m = matrix({("g0", "g1"): 10 * WAVELENGTH_RATE_BYTES})
        topology = engineer_topology(m, ports_per_node=2)
        score = evaluate_topology(topology, m)
        assert score.direct_fraction == pytest.approx(0.2)

    def test_empty_matrix(self):
        score = evaluate_topology(uniform_mesh(NODES, 4), matrix({}))
        assert score.direct_fraction == 1.0
        assert score.served_bytes_per_s == 0.0

    def test_unreachable_demand_infinite_hops(self):
        m = matrix({("g0", "g1"): 1.0, ("g5", "g6"): 1.0})
        topology = engineer_topology(
            matrix({("g0", "g1"): 1.0}), ports_per_node=1
        )
        score = evaluate_topology(topology, m)
        assert score.mean_hops == float("inf")


class TestSkewedTraffic:
    def test_heavy_pair_count(self):
        m = skewed_traffic(NODES, heavy_pairs=5, heavy_bytes=7e9)
        heavy = [v for v in m.demand.values() if v == 7e9]
        assert len(heavy) == 5

    def test_light_floor_present(self):
        m = skewed_traffic(NODES, heavy_pairs=2, heavy_bytes=7e9, light_bytes=1e3)
        assert len(m.demand) == len(NODES) * (len(NODES) - 1)

    def test_elephants_spread_across_sources(self):
        m = skewed_traffic(NODES, heavy_pairs=8, heavy_bytes=7e9)
        sources = {src for (src, _dst), v in m.demand.items() if v == 7e9}
        assert len(sources) >= 4

    def test_too_many_heavy_pairs_rejected(self):
        with pytest.raises(ValueError):
            skewed_traffic(NODES, heavy_pairs=100, heavy_bytes=1.0)
