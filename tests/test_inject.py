"""Tests for failure injection."""

import pytest

from repro.failures.inject import FleetFailureModel, single_failure
from repro.topology.tpu import GlobalChipId, TpuCluster


class TestSingleFailure:
    def test_event_carries_identity(self):
        cluster = TpuCluster(rack_count=2)
        event = single_failure(cluster, rack=1, chip=(0, 0, 0), time_s=5.0)
        assert event.chip == GlobalChipId(1, (0, 0, 0))
        assert event.time_s == 5.0

    def test_invalid_rack_rejected(self):
        cluster = TpuCluster(rack_count=2)
        with pytest.raises(IndexError):
            single_failure(cluster, rack=5, chip=(0, 0, 0))


class TestFleetModel:
    def test_events_time_ordered(self):
        cluster = TpuCluster(rack_count=4)
        model = FleetFailureModel(cluster, seed=1)
        events = model.sample_failures(horizon_s=30 * 24 * 3600)
        times = [e.time_s for e in events]
        assert times == sorted(times)

    def test_events_within_horizon(self):
        cluster = TpuCluster(rack_count=4)
        model = FleetFailureModel(cluster, seed=1)
        horizon = 7 * 24 * 3600.0
        events = model.sample_failures(horizon)
        assert all(e.time_s <= horizon for e in events)

    def test_seed_reproducibility(self):
        cluster = TpuCluster(rack_count=2)
        a = FleetFailureModel(cluster, seed=3).sample_failures(1e6)
        b = FleetFailureModel(cluster, seed=3).sample_failures(1e6)
        assert a == b

    def test_expected_failures_scale_with_horizon(self):
        cluster = TpuCluster(rack_count=4)
        model = FleetFailureModel(cluster)
        short = model.expected_failures(24 * 3600.0)
        long = model.expected_failures(30 * 24 * 3600.0)
        assert long > short > 0

    def test_empirical_count_near_expectation(self):
        cluster = TpuCluster(rack_count=16)
        model = FleetFailureModel(cluster, seed=0)
        horizon = 30 * 24 * 3600.0
        events = model.sample_failures(horizon)
        expected = model.expected_failures(horizon)
        assert len(events) == pytest.approx(expected, rel=0.4)

    def test_inject_marks_chips(self):
        cluster = TpuCluster(rack_count=2)
        model = FleetFailureModel(cluster, seed=2)
        events = model.sample_failures(1e8)[:3]
        model.inject(events)
        for event in events:
            assert cluster.rack(event.chip.rack).is_failed(event.chip.coord)

    def test_invalid_parameters(self):
        cluster = TpuCluster(rack_count=1)
        with pytest.raises(ValueError):
            FleetFailureModel(cluster, mtbf_s=0.0)
        with pytest.raises(ValueError):
            FleetFailureModel(cluster).sample_failures(0.0)


class TestSeedPlumbing:
    """Satellite: explicit seeds make fleet sampling a pure function."""

    def test_one_model_sampled_twice_is_identical(self):
        """A long-lived model (a server session) must not consume RNG
        state across calls: the second draw equals the first."""
        cluster = TpuCluster(rack_count=2)
        model = FleetFailureModel(cluster, seed=3)
        first = model.sample_failures(30 * 24 * 3600.0)
        second = model.sample_failures(30 * 24 * 3600.0)
        assert first == second

    def test_different_seeds_differ(self):
        cluster = TpuCluster(rack_count=4)
        horizon = 90 * 24 * 3600.0
        a = FleetFailureModel(cluster, seed=1).sample_failures(horizon)
        b = FleetFailureModel(cluster, seed=2).sample_failures(horizon)
        assert a != b

    def test_seeded_blast_radius_runs_byte_identical(self):
        """Two full API runs of the seeded fleet scenario serialize to the
        same bytes — the reproducibility contract the served endpoint and
        the sweep cache both rely on."""
        from repro import api

        spec = api.ScenarioSpec(
            fabric="photonic",
            outputs=("blast_radius",),
            failures=api.FailurePlan(fleet_days=30.0, seed=7),
        )
        first = api.run(spec).to_json(indent=2, sort_keys=True)
        second = api.run(spec).to_json(indent=2, sort_keys=True)
        assert first == second

    def test_seeded_blast_radius_cli_byte_identical(self, capsys):
        from repro.cli import main

        assert main(["blast-radius", "--days", "30", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["blast-radius", "--days", "30", "--seed", "7"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert main(["blast-radius", "--days", "30", "--seed", "8"]) == 0
        other_seed = capsys.readouterr().out
        assert other_seed != first


class TestChipValidation:
    def test_invalid_chip_coordinate_rejected(self):
        from repro.failures.inject import InvalidChipError

        cluster = TpuCluster()
        with pytest.raises(InvalidChipError):
            single_failure(cluster, rack=0, chip=(4, 0, 0))
        with pytest.raises(InvalidChipError):
            single_failure(cluster, rack=0, chip=(0, -1, 0))

    def test_wrong_dimensionality_rejected(self):
        from repro.failures.inject import InvalidChipError

        with pytest.raises(InvalidChipError):
            single_failure(TpuCluster(), rack=0, chip=(0, 0))

    def test_invalid_chip_error_is_a_value_error(self):
        from repro.failures.inject import InvalidChipError

        assert issubclass(InvalidChipError, ValueError)
