"""End-to-end trace-id propagation: client -> router -> worker.

Router-level tests drive :class:`ShardRouter` in-process with a
recording fake worker transport, so header propagation is asserted
directly; the live test runs a real :class:`ServerThread` and checks the
echo contract holds with tracing off (the default, zero-overhead path).
"""

import asyncio
import json

import pytest

from repro import api
from repro.api import ScenarioSpec
from repro.obs.runtime import RuntimeTracer, valid_trace_id
from repro.serve import (
    ServeClient,
    ServerConfig,
    ServerThread,
    ShardConfig,
    ShardRouter,
    wire,
)

RESULT_BODY = b'{"result": "canned"}\n'


def cheap_spec(seed: int = 42) -> ScenarioSpec:
    return ScenarioSpec(
        slices=(api.SliceSpec("S", (2, 2, 1), (0, 0, 0)),),
        outputs=("costs",),
        seed=seed,
    )


def evaluate_request(spec, trace_id=None) -> wire.Request:
    headers = {"content-type": "application/json"}
    if trace_id is not None:
        headers[wire.TRACE_HEADER.lower()] = trace_id
    return wire.Request(
        "POST", "/v1/evaluate", headers, json.dumps(spec.to_dict()).encode()
    )


def parse_response(raw: bytes):
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


class RecordingWorkers:
    """Minimal worker transport that records forwarded headers."""

    def __init__(self, workers=2):
        self.count = workers
        self.forwarded: list[tuple[int, str, dict[str, str]]] = []

    async def start(self):
        pass

    async def stop(self):
        pass

    def alive(self, slot):
        return True

    async def ensure_alive(self):
        return 0

    async def forward(self, slot, method, path, body=b"", headers=()):
        self.forwarded.append((slot, path, {k.lower(): v for k, v in headers}))
        return 200, {"x-repro-cache": "miss"}, RESULT_BODY

    def describe(self):
        return [
            {"name": f"w{slot}", "alive": True, "port": 10000 + slot,
             "pid": None, "restarts": 0}
            for slot in range(self.count)
        ]


def router_config(workers=2) -> ShardConfig:
    return ShardConfig(
        workers=workers, port=0,
        worker=ServerConfig(port=0, jobs=1, no_cache=True),
    )


def traced_router(fake):
    runtime = RuntimeTracer("router", pid=1)
    router = ShardRouter(router_config(), workers=fake, runtime=runtime)
    return router, runtime


class TestRouterPropagation:
    def test_client_id_echoed_and_forwarded(self):
        async def main():
            fake = RecordingWorkers()
            router, runtime = traced_router(fake)
            raw = await router._evaluate(
                evaluate_request(cheap_spec(), trace_id="client-id-1")
            )
            status, headers, _ = parse_response(raw)
            assert status == 200
            assert headers["x-repro-trace-id"] == "client-id-1"
            (slot, path, forwarded) = fake.forwarded[0]
            assert path == "/v1/evaluate"
            assert forwarded[wire.TRACE_HEADER.lower()] == "client-id-1"
            spans = runtime.spans("router")
            assert spans, "router left no spans"
            tagged = {dict(s.args).get("trace_id") for s in spans}
            assert tagged == {"client-id-1"}

        asyncio.run(main())

    def test_invalid_client_id_replaced_with_minted(self):
        async def main():
            fake = RecordingWorkers()
            router, _ = traced_router(fake)
            hostile = "bad id\nwith newline"
            raw = await router._evaluate(
                evaluate_request(cheap_spec(), trace_id=hostile)
            )
            status, headers, _ = parse_response(raw)
            echoed = headers["x-repro-trace-id"]
            assert status == 200
            assert echoed != hostile
            assert valid_trace_id(echoed)
            (_, _, forwarded) = fake.forwarded[0]
            assert forwarded[wire.TRACE_HEADER.lower()] == echoed

        asyncio.run(main())

    def test_tracing_enabled_mints_id_without_client_header(self):
        async def main():
            fake = RecordingWorkers()
            router, runtime = traced_router(fake)
            raw = await router._evaluate(evaluate_request(cheap_spec()))
            status, headers, _ = parse_response(raw)
            assert status == 200
            minted = headers["x-repro-trace-id"]
            assert valid_trace_id(minted)
            (_, _, forwarded) = fake.forwarded[0]
            assert forwarded[wire.TRACE_HEADER.lower()] == minted
            assert {dict(s.args).get("trace_id")
                    for s in runtime.spans("router")} == {minted}

        asyncio.run(main())

    def test_tracing_off_and_no_header_adds_nothing(self):
        async def main():
            fake = RecordingWorkers()
            router = ShardRouter(router_config(), workers=fake)
            raw = await router._evaluate(evaluate_request(cheap_spec()))
            status, headers, _ = parse_response(raw)
            assert status == 200
            assert "x-repro-trace-id" not in headers
            (_, _, forwarded) = fake.forwarded[0]
            assert wire.TRACE_HEADER.lower() not in forwarded

        asyncio.run(main())

    def test_error_responses_echo_trace_id(self):
        async def main():
            fake = RecordingWorkers()
            router, _ = traced_router(fake)
            request = wire.Request(
                "POST", "/v1/evaluate",
                {wire.TRACE_HEADER.lower(): "err-trace"},
                b'{"fabric": "warpdrive"}',
            )
            raw = await router._evaluate(request)
            status, headers, _ = parse_response(raw)
            assert status == 400
            assert headers["x-repro-trace-id"] == "err-trace"

        asyncio.run(main())


class TestLiveWorkerEcho:
    @pytest.fixture(scope="class")
    def handle(self):
        config = ServerConfig(port=0, jobs=1, no_cache=True)
        with ServerThread(config) as handle:
            yield handle

    def test_echoes_client_id_with_tracing_off(self, handle):
        client = ServeClient(port=handle.port)
        status, headers, _ = client.evaluate_response(
            cheap_spec(), trace_id="through-the-wire"
        )
        assert status == 200
        assert headers["x-repro-trace-id"] == "through-the-wire"

    def test_no_header_means_no_echo_when_untraced(self, handle):
        client = ServeClient(port=handle.port)
        status, headers, _ = client.evaluate_response(cheap_spec(seed=43))
        assert status == 200
        assert "x-repro-trace-id" not in headers

    def test_worker_traced_request_spans_share_id(self):
        runtime = RuntimeTracer("serve", pid=2)
        config = ServerConfig(port=0, jobs=1, no_cache=True)
        with ServerThread(config, runtime=runtime) as handle:
            client = ServeClient(port=handle.port)
            status, headers, _ = client.evaluate_response(
                cheap_spec(seed=44), trace_id="worker-trace"
            )
            assert status == 200
            assert headers["x-repro-trace-id"] == "worker-trace"
        names = {s.name for s in runtime.spans("serve")}
        assert {"serve.request", "serve.queue", "serve.evaluate"} <= names
        # Per-request spans all carry the id; batch-level spans
        # (serve.batch) aggregate many requests and carry none.
        for per_request in ("serve.request", "serve.queue", "serve.evaluate"):
            tagged = {
                dict(s.args).get("trace_id")
                for s in runtime.spans("serve") if s.name == per_request
            }
            assert tagged == {"worker-trace"}, per_request

    def test_prometheus_exposition_parses(self, handle):
        from repro.obs.prometheus import parse_exposition

        client = ServeClient(port=handle.port)
        families = parse_exposition(client.metrics_text())
        assert any(name.startswith("repro_serve_") for name in families)

    def test_bad_metrics_format_is_400(self, handle):
        client = ServeClient(port=handle.port)
        status, _, body = client._request("GET", "/metrics?format=xml")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "bad_format"

    def test_json_metrics_unchanged_by_default(self, handle):
        client = ServeClient(port=handle.port)
        payload = client.metrics()
        assert "serve.requests_completed" in payload["metrics"]
