"""Tests for the ScenarioSpec -> FabricSession -> RunResult experiment API."""

import pytest

from repro.api import (
    CongestionSummary,
    CostReport,
    DeviceReport,
    FabricBackend,
    FabricSession,
    FailurePlan,
    RunResult,
    ScenarioSpec,
    SliceSpec,
    TelemetryReport,
    UnsupportedOutput,
    available_backends,
    create_backend,
    figure5b_slices,
    figure6_slices,
    register_backend,
    run,
    table1_slices,
    unregister_backend,
)


class TestScenarioSpec:
    def test_defaults_are_valid(self):
        spec = ScenarioSpec()
        assert spec.fabric == "photonic"
        assert spec.rack_shape == (4, 4, 4)

    def test_is_hashable(self):
        a = ScenarioSpec(slices=figure5b_slices())
        b = ScenarioSpec(slices=figure5b_slices())
        assert a == b and hash(a) == hash(b)

    def test_lists_are_normalized_to_tuples(self):
        spec = ScenarioSpec(
            rack_shape=[4, 4, 4],
            slices=[SliceSpec("S", [2, 2, 1], [0, 0, 0])],
            outputs=["costs"],
        )
        assert spec.rack_shape == (4, 4, 4)
        assert spec.slices[0].shape == (2, 2, 1)
        assert spec.outputs == ("costs",)

    def test_rejects_unknown_output(self):
        with pytest.raises(ValueError, match="unknown outputs"):
            ScenarioSpec(outputs=("nonsense",))

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ScenarioSpec(mode="quantum")

    def test_telemetry_requires_sim_mode(self):
        with pytest.raises(ValueError, match="sim"):
            ScenarioSpec(outputs=("telemetry",))

    def test_slice_shape_offset_mismatch(self):
        with pytest.raises(ValueError, match="dimensionality"):
            SliceSpec("S", (2, 2), (0, 0, 0))

    def test_json_round_trip(self):
        spec = ScenarioSpec(
            fabric="electrical",
            slices=figure6_slices(),
            buffer_bytes=1 << 20,
            mode="sim",
            outputs=("costs", "telemetry"),
            failures=FailurePlan(failed_chips=((1, 2, 0),), fleet_days=30),
            seed=7,
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_with_fabric_and_outputs(self):
        spec = ScenarioSpec(slices=table1_slices())
        assert spec.with_fabric("electrical").fabric == "electrical"
        assert spec.with_outputs("congestion").outputs == ("congestion",)
        # originals untouched (frozen)
        assert spec.fabric == "photonic"


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        for name in ("electrical", "photonic", "switched", "optical"):
            assert name in names

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            create_backend("warpdrive")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("photonic", lambda: None)

    def test_third_party_backend_selected_by_spec(self):
        class NullFabric:
            name = "null"

            def capability_rows(self, session, spec):
                return (("medium", "vacuum"),)

            def cost_report(self, session, spec):
                raise UnsupportedOutput("null fabric moves no bytes")

        register_backend("null", NullFabric)
        try:
            result = run(
                ScenarioSpec(fabric="null", outputs=("capabilities",)),
                session=FabricSession(),
            )
            assert result.fabric == "null"
            assert result.capabilities == (("medium", "vacuum"),)
        finally:
            unregister_backend("null")

    def test_builtin_backends_satisfy_protocol(self):
        for name in ("electrical", "photonic", "switched"):
            assert isinstance(create_backend(name), FabricBackend)


class TestSessionMemoization:
    def test_repeated_run_returns_same_result(self):
        session = FabricSession()
        spec = ScenarioSpec(slices=figure5b_slices(), outputs=("costs",))
        first = session.run(spec)
        second = session.run(spec)
        assert first is second
        assert session.runs_executed == 1

    def test_equal_spec_hits_cache(self):
        session = FabricSession()
        session.run(ScenarioSpec(slices=figure5b_slices(), outputs=("costs",)))
        session.run(ScenarioSpec(slices=figure5b_slices(), outputs=("costs",)))
        assert session.runs_executed == 1

    def test_topology_artifacts_shared_across_fabrics(self):
        session = FabricSession()
        spec = ScenarioSpec(slices=figure5b_slices(), outputs=("costs",))
        session.compare(spec, fabrics=("electrical", "photonic"))
        assert session.allocator(spec) is session.allocator(
            spec.with_fabric("electrical")
        )

    def test_repair_is_stable_across_repeated_runs(self):
        # plan_optical_repair mutates rack/fabric state; the session must
        # rebuild those per run so results do not drift.
        session = FabricSession()
        spec = ScenarioSpec(
            fabric="photonic",
            slices=figure6_slices(),
            outputs=("repair",),
            failures=FailurePlan(failed_chips=((1, 2, 0),)),
        )
        first = session.run(spec)
        second = FabricSession().run(spec)
        assert first.repair == second.repair
        assert first.repair.fibers_used > 0

    def test_spec_without_slices_rejected_for_costs(self):
        with pytest.raises(ValueError, match="no slices"):
            FabricSession().run(ScenarioSpec(outputs=("costs",)))


class TestSections:
    def test_costs_match_slice_shapes(self):
        result = FabricSession().run(
            ScenarioSpec(slices=figure5b_slices(), outputs=("costs",))
        )
        assert isinstance(result.costs, CostReport)
        line = result.costs.by_name("Slice-4")
        assert line.shape == (4, 4, 2)
        assert line.chips == 32
        assert line.seconds > 0
        with pytest.raises(KeyError):
            result.costs.by_name("Slice-99")

    def test_electrical_congestion_finds_shared_links(self):
        result = FabricSession().run(ScenarioSpec(
            fabric="electrical",
            slices=figure5b_slices(),
            outputs=("congestion",),
        ))
        assert isinstance(result.congestion, CongestionSummary)
        assert not result.congestion.congestion_free
        assert result.congestion.worst_multiplicity >= 2

    def test_photonic_congestion_free(self):
        result = FabricSession().run(ScenarioSpec(
            fabric="photonic",
            slices=figure5b_slices(),
            outputs=("congestion",),
        ))
        assert result.congestion.congestion_free

    def test_switched_reports_contention_loss(self):
        result = FabricSession().run(ScenarioSpec(
            fabric="switched",
            slices=figure5b_slices(),
            outputs=("congestion",),
        ))
        assert 0.0 < result.congestion.contention_loss_fraction < 1.0

    def test_sim_telemetry_orders_schedules_by_spec(self):
        session = FabricSession()
        spec = ScenarioSpec(
            fabric="photonic",
            slices=figure5b_slices(),
            mode="sim",
            outputs=("telemetry",),
        )
        telemetry = session.run(spec).telemetry
        assert isinstance(telemetry, TelemetryReport)
        assert len(telemetry.schedules) == len(spec.slices)
        assert all(t.duration_s > 0 for t in telemetry.schedules)

    def test_optical_beats_electrical_on_steered_slice(self):
        session = FabricSession()
        spec = ScenarioSpec(
            slices=figure5b_slices(), mode="sim", outputs=("telemetry",)
        )
        results = session.compare(spec, fabrics=("electrical", "photonic"))
        slice1_index = [s.name for s in spec.slices].index("Slice-1")
        electrical = results["electrical"].telemetry.schedules[slice1_index]
        optical = results["photonic"].telemetry.schedules[slice1_index]
        assert optical.duration_s < electrical.duration_s

    def test_device_report_is_seed_deterministic(self):
        spec = ScenarioSpec(fabric="photonic", outputs=("device",), seed=9)
        a = FabricSession().run(spec).device
        b = FabricSession().run(spec).device
        assert isinstance(a, DeviceReport)
        assert a == b

    def test_repair_unsupported_on_switched(self):
        spec = ScenarioSpec(
            fabric="switched",
            slices=figure6_slices(),
            outputs=("repair",),
            failures=FailurePlan(failed_chips=((1, 2, 0),)),
        )
        with pytest.raises(UnsupportedOutput):
            FabricSession().run(spec)

    def test_repair_without_failure_plan_rejected(self):
        spec = ScenarioSpec(
            fabric="photonic", slices=figure6_slices(), outputs=("repair",)
        )
        with pytest.raises(UnsupportedOutput, match="failed_chips"):
            FabricSession().run(spec)

    def test_blast_radius_requires_horizon(self):
        spec = ScenarioSpec(fabric="photonic", outputs=("blast_radius",))
        with pytest.raises(UnsupportedOutput, match="fleet_days"):
            FabricSession().run(spec)


class TestRunResultSerialization:
    def _full_result(self) -> RunResult:
        session = FabricSession()
        spec = ScenarioSpec(
            fabric="photonic",
            slices=figure6_slices(),
            mode="sim",
            outputs=(
                "capabilities", "costs", "utilization", "congestion",
                "telemetry", "repair", "blast_radius", "device",
            ),
            failures=FailurePlan(failed_chips=((1, 2, 0),), fleet_days=30),
        )
        return session.run(spec)

    def test_json_round_trip_of_every_section(self):
        result = self._full_result()
        restored = RunResult.from_json(result.to_json())
        assert restored.to_dict() == result.to_dict()
        assert restored.spec == result.spec
        assert restored.costs == result.costs
        assert restored.repair == result.repair
        assert restored.device == result.device

    def test_unrequested_sections_are_none(self):
        result = FabricSession().run(
            ScenarioSpec(slices=table1_slices(), outputs=("costs",))
        )
        assert result.utilization is None
        assert result.repair is None
        assert result.telemetry is None


class TestSpecValidationFromProbes:
    def test_failed_chip_outside_rack_rejected(self):
        with pytest.raises(ValueError, match="outside the rack"):
            ScenarioSpec(failures=FailurePlan(failed_chips=((9, 9, 9),)))

    def test_failed_chip_wrong_dimensionality_rejected(self):
        with pytest.raises(ValueError, match="outside the rack"):
            ScenarioSpec(failures=FailurePlan(failed_chips=((1, 2),)))

    def test_partial_backend_raises_unsupported_output(self):
        class CapabilitiesOnly:
            name = "caps-only"

            def capability_rows(self, session, spec):
                return (("k", "v"),)

        register_backend("caps-only", CapabilitiesOnly)
        try:
            spec = ScenarioSpec(
                fabric="caps-only",
                slices=figure5b_slices(),
                outputs=("costs",),
            )
            with pytest.raises(UnsupportedOutput, match="does not implement"):
                FabricSession().run(spec)
        finally:
            unregister_backend("caps-only")
