"""Tests for workload traffic generators."""

import pytest

from repro.collectives.primitives import Interconnect
from repro.sim.traffic import (
    MoeGatingWorkload,
    MultiTenantWorkload,
    TrainingStepWorkload,
)
from repro.topology.slices import Slice
from repro.topology.torus import Torus


@pytest.fixture
def rack():
    return Torus((4, 4, 4))


def slice3(rack):
    return Slice(name="Slice-3", rack=rack, offset=(0, 0, 0), shape=(4, 4, 1))


class TestTrainingStep:
    def test_one_schedule_per_step(self, rack):
        workload = TrainingStepWorkload(slc=slice3(rack), gradient_bytes=1024, steps=3)
        schedules = workload.schedules()
        assert len(schedules) == 3

    def test_each_step_is_an_allreduce(self, rack):
        workload = TrainingStepWorkload(slc=slice3(rack), gradient_bytes=1024)
        schedule = workload.schedules()[0]
        assert "all-reduce" in schedule.name

    def test_owners_distinguish_steps(self, rack):
        workload = TrainingStepWorkload(slc=slice3(rack), gradient_bytes=1024, steps=2)
        owners = {
            t.owner
            for s in workload.schedules()
            for p in s.phases
            for t in p.transfers
        }
        assert owners == {"Slice-3/step0", "Slice-3/step1"}

    def test_zero_steps_rejected(self, rack):
        with pytest.raises(ValueError):
            TrainingStepWorkload(slc=slice3(rack), gradient_bytes=1, steps=0).schedules()


class TestMultiTenant:
    def test_one_schedule_per_tenant(self, rack):
        from repro.analysis.utilization import figure5b_layout
        from repro.topology.slices import SliceAllocator

        allocator = figure5b_layout(SliceAllocator(rack))
        workload = MultiTenantWorkload(
            slices=allocator.slices, buffer_bytes=4096
        )
        assert len(workload.schedules()) == 4

    def test_interconnect_propagates(self, rack):
        workload = MultiTenantWorkload(
            slices=[slice3(rack)],
            buffer_bytes=4096,
            interconnect=Interconnect.OPTICAL,
        )
        schedule = workload.schedules()[0]
        assert schedule.reconfiguration_count > 0

    def test_empty_tenants_rejected(self):
        with pytest.raises(ValueError):
            MultiTenantWorkload(slices=[], buffer_bytes=1).schedules()


class TestMoeGating:
    def chips(self):
        return [(0, i) for i in range(8)]

    def test_fanout_requests_per_chip(self):
        workload = MoeGatingWorkload(chips=self.chips(), fanout=2)
        batch = workload.next_batch()
        assert len(batch) == 16

    def test_no_self_dispatch(self):
        workload = MoeGatingWorkload(chips=self.chips(), fanout=3)
        for request in workload.next_batch():
            assert request.src != request.dst

    def test_destinations_distinct_per_source(self):
        workload = MoeGatingWorkload(chips=self.chips(), fanout=4)
        batch = workload.next_batch()
        by_source = {}
        for request in batch:
            by_source.setdefault(request.src, []).append(request.dst)
        for dsts in by_source.values():
            assert len(dsts) == len(set(dsts))

    def test_seed_reproducibility(self):
        a = MoeGatingWorkload(chips=self.chips(), seed=5).next_batch()
        b = MoeGatingWorkload(chips=self.chips(), seed=5).next_batch()
        assert a == b

    def test_batches_vary(self):
        workload = MoeGatingWorkload(chips=self.chips(), seed=0)
        batches = workload.batches(2)
        assert batches[0] != batches[1]

    def test_fanout_bounds(self):
        with pytest.raises(ValueError):
            MoeGatingWorkload(chips=self.chips(), fanout=0)
        with pytest.raises(ValueError):
            MoeGatingWorkload(chips=self.chips(), fanout=8)

    def test_needs_two_chips(self):
        with pytest.raises(ValueError):
            MoeGatingWorkload(chips=[(0, 0)])
