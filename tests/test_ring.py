"""Tests for ring construction and ring-algorithm schedules."""

import pytest

from repro.collectives.ring import (
    electrical_hop_path,
    ring_all_gather_schedule,
    ring_reduce_scatter_schedule,
    snake_order,
)
from repro.topology.slices import Slice
from repro.topology.torus import Torus


@pytest.fixture
def rack():
    return Torus((4, 4, 4))


def slice1(rack):
    return Slice(name="Slice-1", rack=rack, offset=(0, 0, 0), shape=(4, 2, 1))


class TestSnakeOrder:
    def test_visits_every_chip_once(self, rack):
        slc = slice1(rack)
        order = snake_order(slc)
        assert len(order) == 8
        assert set(order) == set(slc.chips())

    def test_consecutive_chips_adjacent(self, rack):
        slc = slice1(rack)
        order = snake_order(slc)
        for a, b in zip(order, order[1:]):
            distance = sum(
                min((x - y) % 4, (y - x) % 4) for x, y in zip(a, b)
            )
            assert distance == 1

    def test_ring_closes_adjacent(self, rack):
        order = snake_order(slice1(rack))
        a, b = order[-1], order[0]
        distance = sum(min((x - y) % 4, (y - x) % 4) for x, y in zip(a, b))
        assert distance == 1

    def test_snake_over_3d_slice(self, rack):
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 2, 2))
        order = snake_order(slc)
        assert len(order) == 16
        assert len(set(order)) == 16

    def test_single_chip_slice(self, rack):
        slc = Slice(name="s", rack=rack, offset=(1, 1, 1), shape=(1, 1, 1))
        assert snake_order(slc) == [(1, 1, 1)]


class TestElectricalHopPath:
    def test_adjacent_forward(self, rack):
        slc = slice1(rack)
        assert electrical_hop_path(slc, (0, 0, 0), (1, 0, 0)) == (
            (0, 0, 0),
            (1, 0, 0),
        )

    def test_wrap_walks_forward_by_default(self, rack):
        slc = slice1(rack)
        path = electrical_hop_path(slc, (0, 1, 0), (0, 0, 0))
        assert path == ((0, 1, 0), (0, 2, 0), (0, 3, 0), (0, 0, 0))

    def test_prefer_short_takes_reverse(self, rack):
        slc = slice1(rack)
        path = electrical_hop_path(slc, (0, 1, 0), (0, 0, 0), prefer_short=True)
        assert path == ((0, 1, 0), (0, 0, 0))

    def test_multi_dimension_hop_rejected(self, rack):
        slc = slice1(rack)
        with pytest.raises(ValueError):
            electrical_hop_path(slc, (0, 0, 0), (1, 1, 0))


class TestRingSchedules:
    def test_reduce_scatter_step_count(self, rack):
        slc = slice1(rack)
        schedule = ring_reduce_scatter_schedule(
            snake_order(slc), 800.0, slc=slc
        )
        assert len(schedule.phases) == 7  # p - 1

    def test_each_step_moves_n_over_p(self, rack):
        slc = slice1(rack)
        schedule = ring_reduce_scatter_schedule(snake_order(slc), 800.0, slc=slc)
        for phase in schedule.phases:
            for transfer in phase.transfers:
                assert transfer.n_bytes == pytest.approx(100.0)

    def test_total_bytes(self, rack):
        slc = slice1(rack)
        schedule = ring_reduce_scatter_schedule(snake_order(slc), 800.0, slc=slc)
        # p transfers per step, p-1 steps, N/p each: N * (p-1).
        assert schedule.total_bytes == pytest.approx(800.0 * 7)

    def test_electrical_snake_is_congestion_free(self, rack):
        slc = slice1(rack)
        schedule = ring_reduce_scatter_schedule(snake_order(slc), 800.0, slc=slc)
        assert schedule.is_congestion_free

    def test_optical_ring_uses_direct_paths(self, rack):
        slc = slice1(rack)
        schedule = ring_reduce_scatter_schedule(
            snake_order(slc), 800.0, slc=slc, optical=True
        )
        for phase in schedule.phases:
            for transfer in phase.transfers:
                assert len(transfer.path) == 2

    def test_optical_first_step_charges_reconfig(self, rack):
        slc = slice1(rack)
        schedule = ring_reduce_scatter_schedule(
            snake_order(slc), 800.0, slc=slc, optical=True
        )
        assert schedule.phases[0].reconfigurations == 1
        assert all(p.reconfigurations == 0 for p in schedule.phases[1:])

    def test_single_chip_ring_empty(self):
        schedule = ring_reduce_scatter_schedule([(0, 0, 0)], 100.0)
        assert not schedule.phases

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            ring_reduce_scatter_schedule([(0,), (0,)], 100.0)

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            ring_reduce_scatter_schedule([], 100.0)

    def test_all_gather_mirrors(self, rack):
        slc = slice1(rack)
        ag = ring_all_gather_schedule(snake_order(slc), 800.0, slc=slc)
        rs = ring_reduce_scatter_schedule(snake_order(slc), 800.0, slc=slc)
        assert len(ag.phases) == len(rs.phases)
        assert ag.total_bytes == pytest.approx(rs.total_bytes)
