"""Tests for fiber provisioning against failure scenarios (Section 5)."""

import pytest

from repro.core.fiber_planner import FailureScenario, FiberPlanner

FIG7_LAYOUT = [
    ("Slice-3", (4, 4, 1), (0, 0, 0)),
    ("Slice-4", (4, 4, 2), (0, 0, 1)),
]


@pytest.fixture
def planner():
    return FiberPlanner(rack_shape=(4, 4, 4), layout=FIG7_LAYOUT)


class TestScenarios:
    def test_one_scenario_per_allocated_chip(self, planner):
        scenarios = planner.all_single_failures()
        assert len(scenarios) == 16 + 32

    def test_scenarios_name_their_slice(self, planner):
        scenarios = planner.all_single_failures()
        names = {s.slice_name for s in scenarios}
        assert names == {"Slice-3", "Slice-4"}


class TestEvaluation:
    def test_generous_budget_covers_all(self, planner):
        subset = planner.all_single_failures()[:8]
        point = planner.evaluate(16, subset)
        assert point.coverage == 1.0
        assert point.max_fibers_used > 0

    def test_zero_budget_fails_cross_server_repairs(self, planner):
        subset = planner.all_single_failures()[:8]
        point = planner.evaluate(0, subset)
        assert point.coverage < 1.0

    def test_coverage_monotone_in_budget(self, planner):
        subset = planner.all_single_failures()[:6]
        curve = planner.coverage_curve([0, 2, 8], subset)
        coverages = [p.coverage for p in curve]
        assert coverages == sorted(coverages)

    def test_negative_budget_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.evaluate(-1)


class TestMinimumFibers:
    def test_minimum_covers_all(self, planner):
        subset = planner.all_single_failures()[:6]
        minimum = planner.minimum_fibers(subset, upper_bound=16)
        assert planner.evaluate(minimum, subset).coverage == 1.0
        if minimum > 0:
            assert planner.evaluate(minimum - 1, subset).coverage < 1.0

    def test_uncoverable_layout_raises(self):
        # No free chips at all: repairs can never succeed.
        full = FiberPlanner(
            rack_shape=(4, 4, 4), layout=[("all", (4, 4, 4), (0, 0, 0))]
        )
        scenarios = [FailureScenario(slice_name="all", failed=(0, 0, 0))]
        with pytest.raises(RuntimeError):
            full.minimum_fibers(scenarios, upper_bound=4)
