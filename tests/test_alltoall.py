"""Tests for ALLTOALL strategies (paper Section 5)."""

import pytest

from repro.collectives.alltoall import (
    alltoall_electrical_schedule,
    alltoall_optical_cost,
    alltoall_optical_schedule,
    alltoall_ring_cost,
    alltoall_ring_schedule,
)
from repro.topology.slices import Slice
from repro.topology.torus import Torus


@pytest.fixture
def rack():
    return Torus((4, 4, 4))


def slice3(rack):
    return Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 4, 1))


class TestCosts:
    def test_optical_cost_terms(self):
        cost = alltoall_optical_cost(8)
        assert cost.alpha_count == 7
        assert cost.reconfig_count == 7
        assert cost.beta_factor == pytest.approx(7 / 8)

    def test_ring_cost_quadratically_worse(self):
        optical = alltoall_optical_cost(16)
        ring = alltoall_ring_cost(16)
        assert ring.beta_factor / optical.beta_factor == pytest.approx(16 / 2)

    def test_ring_cost_formula(self):
        assert alltoall_ring_cost(8).beta_factor == pytest.approx(3.5)

    def test_small_p_rejected(self):
        with pytest.raises(ValueError):
            alltoall_optical_cost(1)
        with pytest.raises(ValueError):
            alltoall_ring_cost(0)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            alltoall_optical_cost(4, 0.0)
        with pytest.raises(ValueError):
            alltoall_ring_cost(4, 2.0)


class TestOpticalSchedule:
    def chips(self):
        return [(0, i, 0) for i in range(8)]

    def test_round_count(self):
        schedule = alltoall_optical_schedule(self.chips(), 800.0)
        assert len(schedule.phases) == 7

    def test_each_round_is_a_permutation(self):
        schedule = alltoall_optical_schedule(self.chips(), 800.0)
        for phase in schedule.phases:
            sources = [t.src for t in phase.transfers]
            destinations = [t.dst for t in phase.transfers]
            assert len(set(sources)) == 8
            assert len(set(destinations)) == 8

    def test_every_pair_served_once(self):
        chips = self.chips()
        schedule = alltoall_optical_schedule(chips, 800.0)
        pairs = {
            (t.src, t.dst) for p in schedule.phases for t in p.transfers
        }
        assert len(pairs) == 8 * 7

    def test_rounds_are_congestion_free(self):
        schedule = alltoall_optical_schedule(self.chips(), 800.0)
        assert schedule.is_congestion_free

    def test_reconfig_per_round(self):
        schedule = alltoall_optical_schedule(self.chips(), 800.0)
        assert schedule.reconfiguration_count == 7

    def test_shard_size(self):
        schedule = alltoall_optical_schedule(self.chips(), 800.0)
        assert schedule.phases[0].transfers[0].n_bytes == pytest.approx(100.0)

    def test_duplicate_chips_rejected(self):
        with pytest.raises(ValueError):
            alltoall_optical_schedule([(0, 0, 0), (0, 0, 0)], 1.0)


class TestElectricalSchedule:
    def test_all_pairs_present(self, rack):
        slc = slice3(rack)
        schedule = alltoall_electrical_schedule(slc, 1600.0)
        assert len(schedule.phases) == 1
        assert len(schedule.phases[0].transfers) == 16 * 15

    def test_direct_alltoall_congests(self, rack):
        # The Section 5 claim: all-to-all on a static torus shares links.
        slc = slice3(rack)
        schedule = alltoall_electrical_schedule(slc, 1600.0)
        assert not schedule.is_congestion_free

    def test_paths_are_torus_walks(self, rack):
        slc = slice3(rack)
        schedule = alltoall_electrical_schedule(slc, 1600.0)
        for transfer in schedule.phases[0].transfers:
            for a, b in zip(transfer.path, transfer.path[1:]):
                assert b in slc.rack.neighbors(a)


class TestRingSchedule:
    def test_step_count(self, rack):
        schedule = alltoall_ring_schedule(slice3(rack), 1600.0)
        assert len(schedule.phases) == 15

    def test_in_flight_volume_shrinks(self, rack):
        schedule = alltoall_ring_schedule(slice3(rack), 1600.0)
        volumes = [p.transfers[0].n_bytes for p in schedule.phases]
        assert volumes == sorted(volumes, reverse=True)

    def test_total_bytes_exceed_optical(self, rack):
        slc = slice3(rack)
        ring = alltoall_ring_schedule(slc, 1600.0)
        optical = alltoall_optical_schedule(slc.chips(), 1600.0)
        assert ring.total_bytes > optical.total_bytes

    def test_congestion_free_on_dedicated_ring(self, rack):
        schedule = alltoall_ring_schedule(slice3(rack), 1600.0)
        assert schedule.is_congestion_free
