"""Tests for the switched (big-switch) server baseline."""

import pytest

from repro.topology.switched import SwitchedServer


class TestFlows:
    def test_add_flow(self):
        server = SwitchedServer(accelerators=4, port_bandwidth_bytes=100.0)
        flow = server.add_flow(0, 1, 50.0)
        assert server.flows == [flow]

    def test_invalid_ports_rejected(self):
        server = SwitchedServer(accelerators=4)
        with pytest.raises(ValueError):
            server.add_flow(0, 4, 1.0)
        with pytest.raises(ValueError):
            server.add_flow(0, 0, 1.0)
        with pytest.raises(ValueError):
            server.add_flow(0, 1, 0.0)

    def test_clear(self):
        server = SwitchedServer(accelerators=4)
        server.add_flow(0, 1, 1.0)
        server.clear()
        assert not server.flows

    def test_two_accelerators_minimum(self):
        with pytest.raises(ValueError):
            SwitchedServer(accelerators=1)


class TestIdealBehaviour:
    def test_single_flow_gets_demand(self):
        server = SwitchedServer(
            accelerators=4, port_bandwidth_bytes=100.0, host_contention_per_flow=0.0
        )
        flow = server.add_flow(0, 1, 40.0)
        assert server.effective_rates()[flow] == pytest.approx(40.0)

    def test_source_port_splits(self):
        server = SwitchedServer(
            accelerators=4, port_bandwidth_bytes=100.0, host_contention_per_flow=0.0
        )
        a = server.add_flow(0, 1, 1000.0)
        b = server.add_flow(0, 2, 1000.0)
        rates = server.effective_rates()
        assert rates[a] == pytest.approx(50.0)
        assert rates[b] == pytest.approx(50.0)

    def test_permutation_traffic_full_rate(self):
        server = SwitchedServer(
            accelerators=4, port_bandwidth_bytes=100.0, host_contention_per_flow=0.0
        )
        for src in range(4):
            server.add_flow(src, (src + 1) % 4, 1000.0)
        assert server.aggregate_throughput_bytes() == pytest.approx(400.0)


class TestHostContention:
    def test_fanin_degrades_throughput(self):
        # The paper's citation of [4]: the big-switch abstraction breaks
        # under receiver-side contention at high per-chip rates.
        server = SwitchedServer(
            accelerators=8, port_bandwidth_bytes=100.0, host_contention_per_flow=0.1
        )
        for src in (1, 2, 3, 4):
            server.add_flow(src, 0, 1000.0)
        assert server.contention_loss_fraction() == pytest.approx(0.3)

    def test_no_contention_without_fanin(self):
        server = SwitchedServer(
            accelerators=4, port_bandwidth_bytes=100.0, host_contention_per_flow=0.1
        )
        server.add_flow(0, 1, 1000.0)
        server.add_flow(2, 3, 1000.0)
        assert server.contention_loss_fraction() == pytest.approx(0.0)

    def test_contention_clamped_at_zero_rate(self):
        server = SwitchedServer(
            accelerators=16, port_bandwidth_bytes=100.0, host_contention_per_flow=0.1
        )
        for src in range(1, 13):
            server.add_flow(src, 0, 1000.0)
        rates = server.effective_rates()
        assert all(rate >= 0.0 for rate in rates.values())

    def test_invalid_contention_factor(self):
        with pytest.raises(ValueError):
            SwitchedServer(host_contention_per_flow=1.0)

    def test_empty_server_no_loss(self):
        assert SwitchedServer().contention_loss_fraction() == 0.0
