"""Tests for the SerDes lane pool — the tile's connection limit."""

import pytest

from repro.phy.serdes import SerdesExhausted, SerdesPool


class TestAllocation:
    def test_fresh_pool_all_free(self):
        pool = SerdesPool.for_chip(8)
        assert pool.capacity == 8
        assert pool.free_lanes == 8

    def test_default_matches_paper(self):
        assert SerdesPool.for_chip().capacity == 16

    def test_allocate_lowest_index_first(self):
        pool = SerdesPool.for_chip(4)
        lane = pool.allocate("conn-a")
        assert lane.index == 0
        assert pool.free_lanes == 3

    def test_allocation_exhausts(self):
        pool = SerdesPool.for_chip(2)
        pool.allocate("a")
        pool.allocate("b")
        with pytest.raises(SerdesExhausted):
            pool.allocate("c")

    def test_connection_limit_is_the_paper_constraint(self):
        # Section 3: connections per tile are limited by SerDes ports,
        # not by the >10,000 waveguides.
        pool = SerdesPool.for_chip()
        for i in range(16):
            pool.allocate(f"conn-{i}")
        with pytest.raises(SerdesExhausted):
            pool.allocate("one-too-many")

    def test_zero_lane_pool_rejected(self):
        with pytest.raises(ValueError):
            SerdesPool.for_chip(0)


class TestRelease:
    def test_release_frees_lanes(self):
        pool = SerdesPool.for_chip(4)
        pool.allocate("x")
        pool.allocate("x")
        assert pool.release("x") == 2
        assert pool.free_lanes == 4

    def test_release_unknown_owner_noop(self):
        pool = SerdesPool.for_chip(2)
        assert pool.release("ghost") == 0

    def test_release_lane_by_index(self):
        pool = SerdesPool.for_chip(2)
        pool.allocate("x")
        pool.release_lane(0)
        assert pool.free_lanes == 2

    def test_release_lane_index_bounds(self):
        with pytest.raises(IndexError):
            SerdesPool.for_chip(2).release_lane(5)

    def test_reallocation_after_release(self):
        pool = SerdesPool.for_chip(1)
        pool.allocate("a")
        pool.release("a")
        lane = pool.allocate("b")
        assert lane.bound_to == "b"


class TestRates:
    def test_aggregate_rate(self):
        pool = SerdesPool.for_chip(16)
        assert pool.aggregate_rate_bps() == pytest.approx(16 * 224e9)

    def test_allocated_rate_tracks_use(self):
        pool = SerdesPool.for_chip(4)
        assert pool.allocated_rate_bps() == 0.0
        pool.allocate("a")
        pool.allocate("a")
        assert pool.allocated_rate_bps() == pytest.approx(2 * 224e9)
