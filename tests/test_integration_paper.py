"""End-to-end integration tests reproducing the paper's headline results.

Each test corresponds to a table or figure; the benchmark harness prints
the same quantities, these tests pin them.
"""

import numpy as np
import pytest

from repro.analysis.congestion_report import analyze_rack_congestion
from repro.analysis.utilization import figure5b_layout, rack_utilization
from repro.collectives.cost_model import CostParameters
from repro.collectives.primitives import (
    Interconnect,
    build_reduce_scatter_schedule,
    plan_reduce_scatter,
    reduce_scatter_cost,
)
from repro.core.fabric import LightpathRackFabric
from repro.core.repair import plan_optical_repair
from repro.core.wafer import LightpathWafer
from repro.failures.blast_radius import compare_policies, improvement_factor
from repro.failures.inject import FleetFailureModel
from repro.failures.recovery import ElectricalRecoveryAnalysis
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.phy.mzi import MziSwitchDynamics
from repro.phy.stitch_loss import StitchLossModel
from repro.sim.runner import run_schedule
from repro.topology.slices import SliceAllocator
from repro.topology.tpu import TpuCluster, TpuRack
from repro.topology.torus import Torus


class TestSection3Hardware:
    def test_fig3a_reconfiguration_under_3_7us(self):
        dynamics = MziSwitchDynamics(noise_rms=0.01, rng=np.random.default_rng(0))
        trace = dynamics.measure_step(duration_s=12e-6, samples=4000)
        fit = dynamics.fit_exponential(trace)
        assert fit.settling_time(0.05) <= 3.7e-6 * 1.1

    def test_fig3b_stitch_loss_low_enough_to_route(self):
        model = StitchLossModel(rng=np.random.default_rng(0))
        hist = model.histogram(samples=10000)
        assert hist.mean_db == pytest.approx(0.25, abs=0.02)
        # Full-wafer traversal (10 crossings) loses ~2.5 dB — well inside
        # the >20 dB budget, hence "routing within the same active layer".
        assert 10 * hist.mean_db < 5.0

    def test_wafer_capability_summary(self):
        wafer = LightpathWafer()
        assert wafer.matches_paper()
        caps = wafer.capabilities()
        assert caps.tiles == 32
        assert caps.lasers_per_tile == 16
        assert caps.wavelength_rate_bps == pytest.approx(224e9)
        assert caps.reconfiguration_latency_s == pytest.approx(3.7e-6)


class TestTables1And2:
    def test_table1_reproduced(self):
        rack = Torus((4, 4, 4))
        allocator = SliceAllocator(rack)
        slice1 = allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
        electrical = reduce_scatter_cost(slice1, Interconnect.ELECTRICAL)
        optical = reduce_scatter_cost(slice1, Interconnect.OPTICAL)
        # Elec: 7 x a | N(7/8)(3/B).  Optics: 7 x a + r | N(7/8)(1/B).
        assert (electrical.alpha_count, optical.alpha_count) == (7, 7)
        assert optical.reconfig_count == 1
        assert electrical.beta_factor / optical.beta_factor == pytest.approx(3.0)

    def test_table2_reproduced(self):
        from repro.collectives.primitives import reduce_scatter_stage_costs

        rack = Torus((4, 4, 4))
        allocator = SliceAllocator(rack)
        slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
        electrical = reduce_scatter_stage_costs(slice3, Interconnect.ELECTRICAL)
        optical = reduce_scatter_stage_costs(slice3, Interconnect.OPTICAL)
        # Two stages (X rings on N, then Y rings on N/4), each 3 x a, the
        # optical rows +r, betas 1.5x apart.
        assert [c.alpha_count for c in electrical] == [3, 3]
        assert [c.reconfig_count for c in optical] == [1, 1]
        for e, o in zip(electrical, optical):
            assert e.beta_factor / o.beta_factor == pytest.approx(1.5)
        assert electrical[0].beta_factor / electrical[1].beta_factor == (
            pytest.approx(4.0)
        )

    def test_simulated_execution_confirms_table1(self):
        rack = Torus((4, 4, 4))
        allocator = SliceAllocator(rack)
        slice1 = allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
        n_bytes = 1 << 26
        params = CostParameters()
        durations = {}
        for interconnect in (Interconnect.ELECTRICAL, Interconnect.OPTICAL):
            strategy = plan_reduce_scatter(slice1, interconnect)
            caps = {
                link: CHIP_EGRESS_BYTES * strategy.bandwidth_fraction
                for link in rack.links()
            }
            schedule = build_reduce_scatter_schedule(slice1, n_bytes, interconnect)
            durations[interconnect] = run_schedule(
                schedule, caps, params.alpha_s, params.reconfig_s
            )
        ratio = (
            durations[Interconnect.ELECTRICAL].transfer_s
            / durations[Interconnect.OPTICAL].transfer_s
        )
        assert ratio == pytest.approx(3.0, rel=1e-6)


class TestFigure5:
    def test_bandwidth_loss_series(self):
        rows = {u.name: u for u in rack_utilization(figure5b_layout())}
        assert rows["Slice-1"].bandwidth_loss_percent == pytest.approx(66.7, abs=0.1)
        assert rows["Slice-2"].bandwidth_loss_percent == pytest.approx(66.7, abs=0.1)
        assert rows["Slice-3"].bandwidth_loss_percent == pytest.approx(33.3, abs=0.1)
        assert rows["Slice-4"].bandwidth_loss_percent == pytest.approx(33.3, abs=0.1)
        assert all(u.optical_fraction == 1.0 for u in rows.values())

    def test_naive_rings_congest_electrically(self):
        report = analyze_rack_congestion(figure5b_layout())
        assert not report.is_congestion_free


class TestFigure6And7:
    def _scenario(self):
        rack = TpuRack(0)
        allocator = SliceAllocator(rack.torus)
        slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
        allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))
        allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
        return rack, allocator, slice3

    def test_fig6a_electrical_repair_always_congests(self):
        rack, allocator, slice3 = self._scenario()
        analysis = ElectricalRecoveryAnalysis(rack.torus, allocator, max_hops=5)
        assert not analysis.congestion_free_replacement_exists(slice3, (1, 2, 0))

    def test_fig7_optical_repair_is_congestion_free(self):
        rack, allocator, slice3 = self._scenario()
        fabric = LightpathRackFabric(rack)
        plan = plan_optical_repair(fabric, allocator, slice3, (1, 2, 0))
        assert plan.setup_latency_s == pytest.approx(3.7e-6)
        assert fabric.is_congestion_free()
        assert plan.blast_radius_chips == 1

    def test_same_failure_electrical_blocked_optical_repaired(self):
        rack, allocator, slice3 = self._scenario()
        failed = (2, 1, 0)
        analysis = ElectricalRecoveryAnalysis(rack.torus, allocator, max_hops=5)
        assert not analysis.congestion_free_replacement_exists(slice3, failed)
        fabric = LightpathRackFabric(rack)
        plan = plan_optical_repair(fabric, allocator, slice3, failed)
        assert plan.circuits


class TestSection42BlastRadius:
    def test_blast_radius_shrinks_rack_to_server(self):
        cluster = TpuCluster(rack_count=16)
        events = FleetFailureModel(cluster, seed=7).sample_failures(
            90 * 24 * 3600.0
        )
        assert events, "expected some failures in a 1024-chip quarter"
        rack_report, optical_report = compare_policies(events)
        assert rack_report.blast_radius_chips == 64
        assert optical_report.blast_radius_chips == 4
        assert improvement_factor(rack_report, optical_report) == pytest.approx(16.0)
