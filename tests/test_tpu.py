"""Tests for the TPUv4 rack/cluster substrate."""

import pytest

from repro.topology.tpu import GlobalChipId, TpuCluster, TpuRack


class TestRack:
    def test_rack_is_4x4x4(self):
        assert TpuRack(0).shape == (4, 4, 4)
        assert TpuRack(0).chip_count == 64

    def test_paper_geometry_validates(self):
        TpuRack(0).validate_paper_geometry()

    def test_sixteen_servers(self):
        assert len(TpuRack(0).servers()) == 16

    def test_server_has_four_chips(self):
        rack = TpuRack(0)
        for server in rack.servers():
            assert len(rack.server_chips(server)) == 4

    def test_server_grouping_partitions_chips(self):
        rack = TpuRack(0)
        seen = set()
        for server in rack.servers():
            for chip in rack.server_chips(server):
                assert chip not in seen
                seen.add(chip)
        assert len(seen) == 64

    def test_server_of_consistency(self):
        rack = TpuRack(0)
        for server in rack.servers():
            for chip in rack.server_chips(server):
                assert rack.server_of(chip) == server

    def test_server_of_out_of_rack(self):
        with pytest.raises(ValueError):
            TpuRack(0).server_of((9, 0, 0))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            TpuRack(-1)


class TestRackFailures:
    def test_fail_and_repair(self):
        rack = TpuRack(0)
        rack.fail_chip((1, 2, 3))
        assert rack.is_failed((1, 2, 3))
        assert rack.failed_chips() == {(1, 2, 3)}
        rack.repair_chip((1, 2, 3))
        assert not rack.is_failed((1, 2, 3))

    def test_fail_unknown_chip(self):
        with pytest.raises(ValueError):
            TpuRack(0).fail_chip((4, 0, 0))


class TestFacePorts:
    def test_face_port_count(self):
        rack = TpuRack(0)
        assert len(rack.face_ports(2)) == 16  # one per (x, y) column

    def test_face_ports_are_opposite(self):
        rack = TpuRack(0)
        for low, high in rack.face_ports(0):
            assert low[0] == 0
            assert high[0] == 3
            assert low[1:] == high[1:]

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            TpuRack(0).face_ports(3)


class TestCluster:
    def test_default_cluster_is_4096_chips(self):
        assert TpuCluster().chip_count == 4096

    def test_small_cluster(self):
        cluster = TpuCluster(rack_count=2)
        assert cluster.chip_count == 128
        assert len(cluster.chip_ids()) == 128

    def test_rack_access(self):
        cluster = TpuCluster(rack_count=2)
        assert cluster.rack(1).index == 1
        with pytest.raises(IndexError):
            cluster.rack(2)

    def test_join_racks_connects_faces(self):
        cluster = TpuCluster(rack_count=2)
        latency = cluster.join_racks(2, 0, 1)
        assert latency > 0
        assert cluster.racks_joined(2, 0, 1)
        assert cluster.racks_joined(2, 1, 0)

    def test_join_is_per_dimension(self):
        cluster = TpuCluster(rack_count=2)
        cluster.join_racks(2, 0, 1)
        assert not cluster.racks_joined(0, 0, 1)

    def test_isolate_rack(self):
        cluster = TpuCluster(rack_count=2)
        cluster.join_racks(2, 0, 1)
        cluster.isolate_rack(2, 0)
        assert not cluster.racks_joined(2, 0, 1)

    def test_ocs_latency_much_slower_than_lightpath(self):
        # The comparison the paper draws: OCS milliseconds vs MZI 3.7 us.
        cluster = TpuCluster(rack_count=2)
        assert cluster.ocs_planes[0].reconfigure_latency_s > 1000 * 3.7e-6

    def test_failed_chips_across_cluster(self):
        cluster = TpuCluster(rack_count=2)
        cluster.rack(0).fail_chip((0, 0, 0))
        cluster.rack(1).fail_chip((1, 1, 1))
        failed = cluster.failed_chips()
        assert GlobalChipId(0, (0, 0, 0)) in failed
        assert GlobalChipId(1, (1, 1, 1)) in failed
        assert len(failed) == 2

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            TpuCluster(rack_count=0)
