"""Tests for wavelength assignment with the continuity constraint."""

import numpy as np
import pytest

from repro.core.spectrum import (
    AssignmentPolicy,
    BlockingExperiment,
    WavelengthAssigner,
)
from repro.core.wafer import LightpathWafer


def assigner(channels=4, policy=AssignmentPolicy.FIRST_FIT, grid=(1, 4)):
    return WavelengthAssigner(
        LightpathWafer(grid=grid), channels=channels, policy=policy,
        rng=np.random.default_rng(0),
    )


class TestAssignment:
    def test_first_fit_picks_lowest(self):
        a = assigner()
        result = a.assign((0, 0), (0, 3), owner="x")
        assert result is not None
        assert result.wavelength == 0

    def test_continuity_enforced(self):
        a = assigner(channels=2)
        # Occupy wavelength 0 on the middle boundary only.
        route = a.router.dimension_order_route((0, 1), (0, 2))
        for boundary in route.boundaries():
            a._boundary_occupancy(boundary)[0] = "blocker"
        result = a.assign((0, 0), (0, 3), owner="x")
        # Wavelength 0 is broken mid-path; the whole circuit must use 1.
        assert result.wavelength == 1

    def test_blocking_when_spectrum_full(self):
        a = assigner(channels=1)
        assert a.assign((0, 0), (0, 3), owner="a") is not None
        assert a.assign((0, 1), (0, 2), owner="b") is None

    def test_disjoint_routes_reuse_wavelengths(self):
        a = assigner(channels=1, grid=(2, 4))
        first = a.assign((0, 0), (0, 1), owner="a")
        second = a.assign((1, 0), (1, 1), owner="b")
        assert first.wavelength == second.wavelength == 0

    def test_release_restores_capacity(self):
        a = assigner(channels=1)
        result = a.assign((0, 0), (0, 3), owner="a")
        a.release(result, owner="a")
        assert a.assign((0, 0), (0, 3), owner="b") is not None

    def test_release_wrong_owner_rejected(self):
        a = assigner()
        result = a.assign((0, 0), (0, 3), owner="a")
        with pytest.raises(KeyError):
            a.release(result, owner="imposter")

    def test_utilization_tracks_assignments(self):
        a = assigner(channels=2, grid=(1, 2))
        assert a.utilization() == 0.0
        a.assign((0, 0), (0, 1), owner="a")
        assert a.utilization() == pytest.approx(1 / 4)  # 1 of 2x2 slots

    def test_channels_validation(self):
        with pytest.raises(ValueError):
            WavelengthAssigner(LightpathWafer(grid=(1, 2)), channels=0)


class TestPolicies:
    def test_most_used_packs_wavelengths(self):
        a = assigner(channels=4, policy=AssignmentPolicy.MOST_USED, grid=(2, 4))
        a.assign((0, 0), (0, 1), owner="a")
        # A disjoint route should re-pick the already-used wavelength.
        second = a.assign((1, 0), (1, 1), owner="b")
        assert second.wavelength == 0

    def test_random_policy_seeded(self):
        a1 = assigner(channels=8, policy=AssignmentPolicy.RANDOM)
        a2 = assigner(channels=8, policy=AssignmentPolicy.RANDOM)
        r1 = a1.assign((0, 0), (0, 3), owner="x")
        r2 = a2.assign((0, 0), (0, 3), owner="x")
        assert r1.wavelength == r2.wavelength


class TestBlockingExperiment:
    def test_no_blocking_at_light_load(self):
        experiment = BlockingExperiment(grid=(4, 8), channels=16, seed=1)
        point = experiment.run(8, AssignmentPolicy.FIRST_FIT)
        assert point.blocking_probability == 0.0

    def test_blocking_grows_with_load(self):
        experiment = BlockingExperiment(grid=(2, 4), channels=4, seed=1)
        sweep = experiment.sweep([4, 32, 128], AssignmentPolicy.FIRST_FIT)
        probabilities = [p.blocking_probability for p in sweep]
        assert probabilities[-1] > probabilities[0]

    def test_heavy_load_blocks(self):
        experiment = BlockingExperiment(grid=(2, 4), channels=2, seed=3)
        point = experiment.run(200, AssignmentPolicy.FIRST_FIT)
        assert point.blocking_probability > 0.5

    def test_point_accounting(self):
        experiment = BlockingExperiment(grid=(2, 4), channels=2, seed=0)
        point = experiment.run(50, AssignmentPolicy.RANDOM)
        assert 0 <= point.accepted <= point.offered == 50

    def test_zero_offered(self):
        experiment = BlockingExperiment()
        point = experiment.run(0, AssignmentPolicy.FIRST_FIT)
        assert point.blocking_probability == 0.0

    def test_negative_offered_rejected(self):
        with pytest.raises(ValueError):
            BlockingExperiment().run(-1, AssignmentPolicy.FIRST_FIT)
