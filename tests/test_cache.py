"""Tests for the content-addressed result caches."""

import json
import os
import threading

import pytest

import repro
from repro.api import (
    DiskResultCache,
    FabricSession,
    MemoryResultCache,
    NullResultCache,
    ScenarioSpec,
    SliceSpec,
    code_fingerprint,
    default_cache_dir,
    run_many,
    spec_key,
    tier_cache_stats,
)


def small_spec(**overrides):
    defaults = dict(
        fabric="electrical",
        slices=(SliceSpec("Slice-1", (4, 2, 1), (0, 0, 3)),),
        outputs=("costs",),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSpecKey:
    def test_equal_specs_share_a_key(self):
        assert spec_key(small_spec()) == spec_key(small_spec())

    def test_key_depends_on_contents(self):
        assert spec_key(small_spec()) != spec_key(
            small_spec(buffer_bytes=1 << 20)
        )
        assert spec_key(small_spec()) != spec_key(small_spec(fabric="photonic"))

    def test_key_is_stable_across_processes(self):
        # The documented contract: the key is a pure content hash, so it
        # must match a freshly serialized recomputation (no id()/hash()
        # randomness can leak in).
        import hashlib

        spec = small_spec()
        canonical = json.dumps(
            spec.to_dict(), sort_keys=True, separators=(",", ":")
        )
        expected = hashlib.sha256(canonical.encode()).hexdigest()
        assert spec_key(spec) == expected

    def test_round_tripped_spec_keeps_its_key(self):
        spec = small_spec()
        assert spec_key(ScenarioSpec.from_json(spec.to_json())) == spec_key(spec)


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro"


class TestDiskResultCache:
    def evaluated(self):
        session = FabricSession()
        spec = small_spec()
        return spec, session.run(spec)

    def test_round_trip(self, tmp_path):
        spec, result = self.evaluated()
        cache = DiskResultCache(tmp_path)
        key = spec_key(spec)
        assert cache.get(key) is None
        cache.put(key, result)
        restored = cache.get(key)
        assert restored is not None
        assert restored.to_json() == result.to_json()

    def test_corrupt_entry_is_a_miss_and_rewritten(self, tmp_path):
        spec, result = self.evaluated()
        cache = DiskResultCache(tmp_path)
        key = spec_key(spec)
        cache.put(key, result)
        path = cache._path(key)
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get(key) is None
        assert not path.exists()  # dropped so the next put rewrites it
        cache.put(key, result)
        assert cache.get(key).to_json() == result.to_json()

    def test_truncated_entry_is_a_miss(self, tmp_path):
        spec, result = self.evaluated()
        cache = DiskResultCache(tmp_path)
        key = spec_key(spec)
        cache.put(key, result)
        path = cache._path(key)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        assert cache.get(key) is None

    def test_entries_namespaced_by_version(self, tmp_path, monkeypatch):
        spec, result = self.evaluated()
        cache = DiskResultCache(tmp_path)
        key = spec_key(spec)
        cache.put(key, result)
        assert cache.get(key) is not None
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        # Same key, new code fingerprint: the old entry is invisible.
        assert cache.get(key) is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        spec, result = self.evaluated()
        cache = DiskResultCache(tmp_path)
        for _ in range(3):
            cache.put(spec_key(spec), result)
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_concurrent_writers_are_safe(self, tmp_path):
        spec, result = self.evaluated()
        cache = DiskResultCache(tmp_path)
        key = spec_key(spec)
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    cache.put(key, result)
                    got = cache.get(key)
                    if got is not None and got.to_json() != result.to_json():
                        errors.append("torn read")
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.get(key).to_json() == result.to_json()
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_len_counts_entries(self, tmp_path):
        spec, result = self.evaluated()
        cache = DiskResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(spec_key(spec), result)
        assert len(cache) == 1


class TestSessionCacheStats:
    def test_hits_and_misses_counted(self):
        session = FabricSession()
        spec = small_spec()
        session.run(spec)
        stats = session.cache_stats()
        assert (stats.hits, stats.misses) == (0, 1)
        assert stats.eval_seconds > 0
        session.run(spec)
        stats = session.cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_memoization_is_layout_independent(self):
        # Two structurally equal but distinct spec objects share one
        # cache slot (satellite of PR 2: key by content, not identity).
        session = FabricSession()
        first = session.run(small_spec())
        second = session.run(small_spec())
        assert first is second
        assert session.cache_stats().hits == 1

    def test_null_cache_disables_memoization(self):
        session = FabricSession(result_cache=NullResultCache())
        spec = small_spec()
        assert session.run(spec) is not session.run(spec)
        assert session.cache_stats().hits == 0
        assert session.cache_stats().misses == 2

    def test_disk_backed_session_persists_across_sessions(self, tmp_path):
        spec = small_spec()
        warm = FabricSession(result_cache=DiskResultCache(tmp_path))
        warm.run(spec)
        assert warm.cache_stats().misses == 1
        cold = FabricSession(result_cache=DiskResultCache(tmp_path))
        cold.run(spec)
        assert cold.cache_stats().hits == 1
        assert cold.cache_stats().misses == 0


class TestPerBackendCacheStats:
    def test_multi_backend_breakdown(self):
        # A comparison session touching two fabrics must report whose
        # memoization is working, not one conflated counter.
        session = FabricSession()
        session.run(small_spec())                        # electrical miss
        session.run(small_spec())                        # electrical hit
        session.run(small_spec(fabric="photonic"))       # photonic miss
        session.run(small_spec(fabric="photonic"))       # photonic hit
        session.run(small_spec(fabric="photonic", buffer_bytes=1 << 20))
        stats = session.cache_stats()
        assert (stats.hits, stats.misses) == (2, 3)
        assert stats.per_backend == {
            "electrical": {"hits": 1, "misses": 1},
            "photonic": {"hits": 1, "misses": 2},
        }

    def test_totals_always_sum_per_backend(self):
        session = FabricSession()
        for fabric in ("electrical", "photonic", "switched", "photonic"):
            session.run(small_spec(fabric=fabric))
        stats = session.cache_stats()
        assert stats.hits == sum(
            b["hits"] for b in stats.per_backend.values()
        )
        assert stats.misses == sum(
            b["misses"] for b in stats.per_backend.values()
        )

    def test_to_dict_carries_the_breakdown_sorted(self):
        session = FabricSession()
        session.run(small_spec(fabric="photonic"))
        session.run(small_spec())
        data = session.cache_stats().to_dict()
        assert list(data["per_backend"]) == ["electrical", "photonic"]
        assert data["per_backend"]["photonic"] == {"hits": 0, "misses": 1}

    def test_sweep_rows_have_no_fabric_breakdown(self):
        # Sweep-level stats aggregate rows, not fabrics; the breakdown is
        # documented as empty there.
        sweep = run_many([small_spec()], no_cache=True)
        assert sweep.cache_stats.per_backend == {}


class TestNoCacheBypass:
    def test_no_cache_never_touches_the_directory(self, tmp_path):
        cache_dir = tmp_path / "cache"
        sweep = run_many(
            [small_spec()], cache_dir=cache_dir, no_cache=True
        )
        assert sweep.cache_stats.misses == 1
        assert not cache_dir.exists()

    def test_no_cache_ignores_warm_entries(self, tmp_path):
        spec = small_spec()
        run_many([spec], cache_dir=tmp_path)
        assert len(DiskResultCache(tmp_path)) == 1
        rerun = run_many([spec], cache_dir=tmp_path, no_cache=True)
        assert rerun.cache_stats.hits == 0
        assert rerun.cache_stats.misses == 1


class TestMemoryResultCache:
    def test_identity_preserved(self):
        cache = MemoryResultCache()
        session = FabricSession(result_cache=cache)
        result = session.run(small_spec())
        assert cache.get(spec_key(small_spec())) is result
        assert len(cache) == 1


class TestCodeFingerprint:
    def test_tracks_version(self, monkeypatch):
        before = code_fingerprint()
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        after = code_fingerprint()
        assert before != after
        assert len(after) == 16


class TestDiskCacheCaps:
    """Satellite: bounded disk cache with oldest-first eviction."""

    def evaluated(self, n):
        """``n`` distinct (key, result) pairs, cheap to produce."""
        session = FabricSession()
        pairs = []
        for seed in range(n):
            spec = small_spec(seed=seed)
            pairs.append((spec_key(spec), session.run(spec)))
        return pairs

    @staticmethod
    def backdate(cache, key, age_s):
        """Push an entry's mtime into the past (mtime orders eviction)."""
        path = cache._path(key)
        stamp = path.stat().st_mtime - age_s
        os.utime(path, (stamp, stamp))

    @pytest.mark.parametrize(
        "kwargs", [{"max_entries": 0}, {"max_entries": -1}, {"max_bytes": 0}]
    )
    def test_invalid_caps_rejected(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            DiskResultCache(tmp_path, **kwargs)

    def test_unbounded_by_default(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        for key, result in self.evaluated(5):
            cache.put(key, result)
        stats = cache.cache_stats()
        assert stats["entries"] == 5
        assert stats["evictions"] == 0
        assert stats["max_entries"] is None

    def test_max_entries_evicts_oldest_first(self, tmp_path):
        cache = DiskResultCache(tmp_path, max_entries=3)
        pairs = self.evaluated(5)
        for age, (key, result) in enumerate(pairs):
            cache.put(key, result)
            self.backdate(cache, key, age_s=100 - 10 * age)
        # The two oldest (earliest backdated) entries are gone...
        assert cache.get(pairs[0][0]) is None
        assert cache.get(pairs[1][0]) is None
        # ...the three newest survive, and the counters agree.
        for key, result in pairs[2:]:
            assert cache.get(key) is not None
        stats = cache.cache_stats()
        assert stats["entries"] == 3
        assert stats["evictions"] == 2

    def test_max_bytes_evicts_down_to_cap(self, tmp_path):
        pairs = self.evaluated(4)
        entry_bytes = len(pairs[0][1].to_json().encode())
        cache = DiskResultCache(tmp_path, max_bytes=2 * entry_bytes)
        for age, (key, result) in enumerate(pairs):
            cache.put(key, result)
            self.backdate(cache, key, age_s=100 - 10 * age)
        stats = cache.cache_stats()
        assert stats["bytes"] <= 2 * entry_bytes
        assert stats["evictions"] == 2
        assert cache.get(pairs[-1][0]) is not None

    def test_just_written_entry_survives_any_cap(self, tmp_path):
        cache = DiskResultCache(tmp_path, max_entries=1)
        pairs = self.evaluated(3)
        for age, (key, result) in enumerate(pairs):
            cache.put(key, result)
            self.backdate(cache, key, age_s=100 - 10 * age)
            assert cache.get(key) is not None  # newest always readable
        assert cache.cache_stats()["entries"] == 1

    def test_eviction_spans_code_fingerprints(self, tmp_path, monkeypatch):
        """Entries stranded by an old code version are evicted first."""
        pairs = self.evaluated(3)
        monkeypatch.setattr(repro, "__version__", "0.0.1-stale")
        stale = DiskResultCache(tmp_path)
        stale.put(pairs[0][0], pairs[0][1])
        self.backdate(stale, pairs[0][0], age_s=1000)
        monkeypatch.undo()
        cache = DiskResultCache(tmp_path, max_entries=2)
        for key, result in pairs[1:]:
            cache.put(key, result)
        # Tripping the cap prunes to the low watermark, evicting
        # oldest-first across fingerprints: the stale entry goes before
        # any current-version entry, and the newest write survives.
        assert not stale._path(pairs[0][0]).exists()
        assert cache.cache_stats()["entries"] == 1
        assert cache.evictions == 2
        assert cache.get(pairs[2][0]) is not None

    def test_uncapped_cache_never_scans(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        for key, result in self.evaluated(5):
            cache.put(key, result)
        assert cache.prune_scans == 0

    def test_capped_puts_amortize_scans(self, tmp_path):
        """The perf point: N capped puts cost ~N/(cap/8) scans, not N."""
        _, result = self.evaluated(1)[0]
        cache = DiskResultCache(tmp_path, max_entries=64)
        puts = 200
        for i in range(puts):
            cache.put(f"{i:016x}" + "0" * 48, result)
        # One seed scan, then one scan per ~cap/8 puts once at the cap.
        # The old implementation scanned on every one of the 200 puts.
        assert 1 <= cache.prune_scans <= 25
        stats = cache.cache_stats()
        # Occupancy oscillates between the watermark and the cap.
        assert 56 <= stats["entries"] <= 64

    def test_counters_resync_with_concurrent_writers(self, tmp_path):
        """A second writer's entries are picked up at the next scan."""
        _, result = self.evaluated(1)[0]
        ours = DiskResultCache(tmp_path, max_entries=8)
        other = DiskResultCache(tmp_path)  # unbounded co-writer
        ours.put("a" * 64, result)  # seed scan: counters now exact
        for i in range(16):
            other.put(f"{i:016x}" + "b" * 48, result)
        # Our approximate counters are stale (17 entries on disk)...
        assert ours._approx_entries == 1
        # ...but the next tripping put rescans and enforces the cap.
        for i in range(8):
            ours.put(f"{i:016x}" + "c" * 48, result)
        assert ours.cache_stats()["entries"] <= 8

    def test_session_sees_capped_cache_transparently(self, tmp_path):
        cache = DiskResultCache(tmp_path, max_entries=2)
        session = FabricSession(result_cache=cache)
        specs = [small_spec(seed=seed) for seed in range(4)]
        for spec in specs:
            session.run(spec)
        assert cache.cache_stats()["entries"] <= 2
        # Evicted specs simply re-evaluate; results are unaffected.
        fresh = FabricSession(result_cache=cache)
        assert (
            fresh.run(specs[0]).to_json()
            == FabricSession().run(specs[0]).to_json()
        )


class TestTierCacheStats:
    """Rolled-up occupancy across a sharded tier's worker caches."""

    def test_sums_across_worker_roots(self, tmp_path):
        session = FabricSession()
        spec = small_spec()
        key, result = spec_key(spec), session.run(spec)
        roots = [tmp_path / "worker-0", tmp_path / "worker-1"]
        DiskResultCache(roots[0]).put(key, result)
        DiskResultCache(roots[0]).put("f" * 64, result)
        DiskResultCache(roots[1]).put(key, result)
        stats = tier_cache_stats(roots)
        assert stats["workers"] == 2
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert [w["entries"] for w in stats["per_worker"]] == [2, 1]
        assert stats["per_worker"][0]["root"] == str(roots[0])

    def test_cacheless_workers_counted_but_empty(self, tmp_path):
        stats = tier_cache_stats([None, tmp_path / "worker-1"])
        assert stats["workers"] == 2
        assert stats["entries"] == 0
        assert stats["per_worker"][0] == {
            "root": None,
            "entries": 0,
            "bytes": 0,
        }
