"""Tests for the sharded serving tier: router, single-flight, failover.

Two layers, mirroring ``tests/test_serve.py``:

* Router-level tests drive :class:`ShardRouter` directly inside
  ``asyncio.run`` with an injected in-process worker transport
  (``FakeWorkers``), so routing, coalescing, admission, and failover are
  deterministic — the gate is an ``asyncio.Event``, not a sleep.
* End-to-end tests run a real :class:`ShardThread` over real
  ``python -m repro serve`` subprocess workers and assert the tier's
  headline contract: responses byte-identical to the single-process
  service, the CLI, and the checked-in golden — for multiple worker
  counts, across a reshard, and through a worker kill.
"""

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro import api
from repro.api import ScenarioSpec, spec_key
from repro.serve import (
    ServeClient,
    ServerConfig,
    ShardConfig,
    ShardRouter,
    ShardThread,
    WorkerUnavailable,
    wire,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def golden_spec() -> ScenarioSpec:
    payload = json.loads((GOLDEN_DIR / "serve_request.json").read_text())
    return ScenarioSpec.from_dict(payload)


def cheap_spec(seed: int = 42) -> ScenarioSpec:
    return ScenarioSpec(
        slices=(api.SliceSpec("S", (2, 2, 1), (0, 0, 0)),),
        outputs=("costs",),
        seed=seed,
    )


def evaluate_request(spec, priority=None) -> wire.Request:
    headers = {"content-type": "application/json"}
    if priority is not None:
        headers[wire.PRIORITY_HEADER.lower()] = priority
    body = json.dumps(spec.to_dict()).encode()
    return wire.Request("POST", "/v1/evaluate", headers, body)


def parse_response(raw: bytes):
    """Split serialized response bytes into (status, headers, body)."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


async def _poll(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        await asyncio.sleep(0.005)


RESULT_BODY = b'{"result": "canned"}\n'


class FakeWorkers:
    """An in-process worker transport with test hooks.

    Implements the protocol :class:`ShardRouter` needs (``start`` /
    ``stop`` / ``alive`` / ``ensure_alive`` / ``forward`` /
    ``describe``) without subprocesses: every forward returns the same
    canned body, optionally blocking on an ``asyncio.Event`` gate first.
    """

    def __init__(self, workers=2, body=RESULT_BODY, gated=False):
        self.count = workers
        self.body = body
        self.gate = asyncio.Event() if gated else None
        self.dead: set[int] = set()
        self.calls: list[tuple[int, str, str]] = []
        self.respawns = 0
        self.started = False
        self.stopped = False

    async def start(self):
        self.started = True

    async def stop(self):
        self.stopped = True

    def alive(self, slot):
        return slot not in self.dead

    async def ensure_alive(self):
        self.respawns += len(self.dead)
        return 0

    async def forward(self, slot, method, path, body=b"", headers=()):
        if slot in self.dead:
            raise WorkerUnavailable(f"worker w{slot} is down", slot=slot)
        self.calls.append((slot, method, path))
        if self.gate is not None and path == "/v1/evaluate":
            await self.gate.wait()
        if path == "/metrics":
            payload = {"cache": {"hits": 2, "misses": 1, "eval_seconds": 0.5}}
            return 200, {}, json.dumps(payload).encode()
        return 200, {"x-repro-cache": "miss"}, self.body

    def describe(self):
        return [
            {
                "name": f"w{slot}",
                "alive": self.alive(slot),
                "port": 10000 + slot,
                "pid": None,
                "restarts": 0,
            }
            for slot in range(self.count)
        ]


def router_config(workers=2, **overrides) -> ShardConfig:
    worker = ServerConfig(
        port=0, jobs=1, no_cache=True, **overrides.pop("worker_kwargs", {})
    )
    return ShardConfig(workers=workers, port=0, worker=worker, **overrides)


class TestShardConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"ring_replicas": 0},
            {"router_queue_limit": 0},
            {"port": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)

    def test_admission_defaults_to_worker_capacity(self):
        config = ShardConfig(workers=3, worker=ServerConfig(queue_limit=10))
        assert config.admission_limit == 30
        assert config.batch_admission_limit == 15
        assert ShardConfig(workers=3, router_queue_limit=7).admission_limit == 7

    def test_worker_cache_namespaces(self, tmp_path):
        config = ShardConfig(worker=ServerConfig(cache_dir=tmp_path))
        assert config.worker_cache_dir(1) == tmp_path / "worker-1"
        cacheless = ShardConfig(worker=ServerConfig(no_cache=True))
        assert cacheless.cache_root() is None
        assert cacheless.worker_cache_dir(0) is None


class TestRouting:
    def test_routes_to_ring_owner(self):
        async def main():
            fake = FakeWorkers(workers=4)
            router = ShardRouter(router_config(4), workers=fake)
            specs = [cheap_spec(seed) for seed in range(12)]
            for spec in specs:
                raw = await router._evaluate(evaluate_request(spec))
                status, headers, body = parse_response(raw)
                owner = router.ring.lookup(spec_key(spec))
                assert status == 200
                assert body == RESULT_BODY
                assert headers["x-repro-worker"] == owner
                assert headers["x-repro-coalesced"] == "leader"
                assert headers["x-repro-cache"] == "miss"
            slots = [slot for slot, _, _ in fake.calls]
            assert slots == [
                int(router.ring.lookup(spec_key(s))[1:]) for s in specs
            ]
            assert len(set(slots)) > 1, "ring never spread the specs"

        asyncio.run(main())

    def test_fails_over_to_next_ring_node(self):
        async def main():
            fake = FakeWorkers(workers=3)
            router = ShardRouter(router_config(3), workers=fake)
            spec = cheap_spec(1)
            order = router.ring.lookup_order(spec_key(spec))
            fake.dead.add(int(order[0][1:]))
            raw = await router._evaluate(evaluate_request(spec))
            status, headers, body = parse_response(raw)
            assert status == 200
            assert body == RESULT_BODY
            assert headers["x-repro-worker"] == order[1]
            snapshot = router.metrics.snapshot()
            assert snapshot["serve.router_failovers"]["value"] == 1

        asyncio.run(main())

    def test_all_workers_down_is_502(self):
        async def main():
            fake = FakeWorkers(workers=2)
            fake.dead.update({0, 1})
            router = ShardRouter(router_config(2), workers=fake)
            raw = await router._evaluate(evaluate_request(cheap_spec()))
            status, _, body = parse_response(raw)
            assert status == 502
            assert json.loads(body)["error"]["code"] == "no_worker"

        asyncio.run(main())

    def test_invalid_spec_rejected_before_routing(self):
        async def main():
            fake = FakeWorkers()
            router = ShardRouter(router_config(), workers=fake)
            request = wire.Request(
                "POST", "/v1/evaluate", {}, b'{"fabric": "warpdrive"}'
            )
            status, _, body = parse_response(await router._evaluate(request))
            assert status == 400
            assert fake.calls == []

        asyncio.run(main())


class TestSingleFlight:
    def test_identical_specs_coalesce_to_one_evaluation(self):
        """M concurrent requests for one spec -> exactly one forwarded
        evaluation; every waiter gets the same bytes; one leader."""

        async def main():
            fake = FakeWorkers(gated=True)
            router = ShardRouter(router_config(), workers=fake)
            spec = cheap_spec()
            tasks = [
                asyncio.ensure_future(
                    router._evaluate(evaluate_request(spec))
                )
                for _ in range(6)
            ]
            await _poll(lambda: len(fake.calls) == 1 and router._active == 6)
            fake.gate.set()
            responses = [parse_response(raw) for raw in await asyncio.gather(*tasks)]
            assert len(fake.calls) == 1, "backend saw more than one evaluation"
            assert all(status == 200 for status, _, _ in responses)
            bodies = {body for _, _, body in responses}
            assert bodies == {RESULT_BODY}, "waiters saw different bytes"
            roles = sorted(h["x-repro-coalesced"] for _, h, _ in responses)
            assert roles == ["follower"] * 5 + ["leader"]
            snapshot = router.metrics.snapshot()
            assert snapshot["serve.requests_coalesced"]["value"] == 5
            assert router._inflight == {}

        asyncio.run(main())

    def test_distinct_specs_do_not_coalesce(self):
        async def main():
            fake = FakeWorkers(gated=True)
            router = ShardRouter(router_config(), workers=fake)
            tasks = [
                asyncio.ensure_future(
                    router._evaluate(evaluate_request(cheap_spec(seed)))
                )
                for seed in range(3)
            ]
            await _poll(lambda: len(fake.calls) == 3)
            fake.gate.set()
            await asyncio.gather(*tasks)
            assert "serve.requests_coalesced" not in router.metrics.snapshot()

        asyncio.run(main())

    def test_expired_waiter_504_without_cancelling_shared_flight(self):
        """The leader's deadline expires -> it gets 504 — but the shared
        evaluation keeps running and a later waiter still rides it."""

        async def main():
            fake = FakeWorkers(gated=True)
            config = router_config(
                worker_kwargs={"request_timeout_s": 1.0}
            )
            router = ShardRouter(config, workers=fake)
            spec = cheap_spec()
            leader = asyncio.ensure_future(
                router._evaluate(evaluate_request(spec))
            )
            await _poll(lambda: len(fake.calls) == 1)
            await asyncio.sleep(0.3)
            follower = asyncio.ensure_future(
                router._evaluate(evaluate_request(spec))
            )
            status, _, body = parse_response(await leader)
            assert status == 504
            assert json.loads(body)["error"]["code"] == "timeout"
            # The shared flight survived its waiter's deadline.
            assert len(router._inflight) == 1
            shared = next(iter(router._inflight.values()))
            assert not shared.cancelled()
            fake.gate.set()
            status, headers, body = parse_response(await follower)
            assert status == 200
            assert body == RESULT_BODY
            assert headers["x-repro-coalesced"] == "follower"
            assert len(fake.calls) == 1, "the evaluation re-ran"
            snapshot = router.metrics.snapshot()
            assert snapshot["serve.requests_timed_out"]["value"] == 1

        asyncio.run(main())


class TestPriorityAdmission:
    def test_batch_shed_before_interactive(self):
        """Past the batch watermark, batch gets 429 while interactive is
        still admitted up to the full router bound."""

        async def main():
            fake = FakeWorkers(gated=True)
            config = router_config(router_queue_limit=4)
            assert config.batch_admission_limit == 2
            router = ShardRouter(config, workers=fake)
            held = [
                asyncio.ensure_future(
                    router._evaluate(evaluate_request(cheap_spec(seed)))
                )
                for seed in range(2)
            ]
            await _poll(lambda: router._active == 2)
            # Batch is past its watermark: shed.
            raw = await router._evaluate(
                evaluate_request(cheap_spec(10), priority="batch")
            )
            status, headers, body = parse_response(raw)
            assert status == 429
            assert json.loads(body)["error"]["code"] == "queue_full"
            assert "retry-after" in headers
            # Interactive still has headroom at the same instant.
            third = asyncio.ensure_future(
                router._evaluate(evaluate_request(cheap_spec(11)))
            )
            await _poll(lambda: router._active == 3)
            fake.gate.set()
            responses = [
                parse_response(raw)
                for raw in await asyncio.gather(*held, third)
            ]
            assert [status for status, _, _ in responses] == [200] * 3
            snapshot = router.metrics.snapshot()
            assert snapshot["serve.requests_shed_batch"]["value"] == 1
            assert snapshot["serve.requests_admitted.interactive"]["value"] == 3

        asyncio.run(main())

    def test_interactive_overflow_is_429_too(self):
        async def main():
            fake = FakeWorkers(gated=True)
            router = ShardRouter(
                router_config(router_queue_limit=1), workers=fake
            )
            held = asyncio.ensure_future(
                router._evaluate(evaluate_request(cheap_spec(0)))
            )
            await _poll(lambda: router._active == 1)
            status, _, _ = parse_response(
                await router._evaluate(evaluate_request(cheap_spec(1)))
            )
            assert status == 429
            fake.gate.set()
            await held
            snapshot = router.metrics.snapshot()
            assert snapshot["serve.requests_rejected_full"]["value"] == 1

        asyncio.run(main())

    def test_unknown_priority_is_400(self):
        async def main():
            router = ShardRouter(router_config(), workers=FakeWorkers())
            raw = await router._evaluate(
                evaluate_request(cheap_spec(), priority="urgent")
            )
            status, _, body = parse_response(raw)
            assert status == 400
            assert json.loads(body)["error"]["code"] == "bad_priority"

        asyncio.run(main())

    def test_draining_router_answers_503(self):
        async def main():
            router = ShardRouter(router_config(), workers=FakeWorkers())
            router._draining = True
            status, _, body = parse_response(
                await router._evaluate(evaluate_request(cheap_spec()))
            )
            assert status == 503
            assert json.loads(body)["error"]["code"] == "draining"

        asyncio.run(main())


class TestIntrospection:
    def test_health_reflects_worker_liveness(self):
        async def main():
            fake = FakeWorkers(workers=2)
            router = ShardRouter(router_config(2), workers=fake)
            assert router.health()["status"] == "ok"
            fake.dead.add(1)
            health = router.health()
            assert health["status"] == "degraded"
            assert health["role"] == "router"
            assert [w["name"] for w in health["workers"]] == ["w0", "w1"]
            assert health["router_queue_limit"] == 2 * 64

        asyncio.run(main())

    def test_metrics_aggregate_worker_caches(self):
        async def main():
            fake = FakeWorkers(workers=2)
            router = ShardRouter(router_config(2), workers=fake)
            payload = await router.metrics_payload()
            assert sorted(payload["workers"]) == ["w0", "w1"]
            tier = payload["tier_cache"]
            assert tier == {
                "hits": 4,
                "misses": 2,
                "eval_seconds": 1.0,
                "hit_rate": 4 / 6,
            }

        asyncio.run(main())

    def test_metrics_survive_a_dead_worker(self):
        async def main():
            fake = FakeWorkers(workers=2)
            fake.dead.add(0)
            router = ShardRouter(router_config(2), workers=fake)
            payload = await router.metrics_payload()
            assert "error" in payload["workers"]["w0"]
            assert payload["tier_cache"]["hits"] == 2

        asyncio.run(main())


@pytest.fixture(scope="module")
def shard_live(tmp_path_factory):
    """A real sharded tier: router + 2 subprocess workers, shared tmp
    cache root split into per-worker namespaces."""
    cache_root = tmp_path_factory.mktemp("shard-cache")
    config = ShardConfig(
        workers=2,
        port=0,
        worker=ServerConfig(
            port=0, jobs=1, linger_ms=1.0, cache_dir=cache_root
        ),
        supervise_interval_s=0.1,
    )
    with ShardThread(config) as handle:
        yield handle


@pytest.fixture(scope="module")
def shard_client(shard_live):
    return ServeClient(port=shard_live.port)


class TestSubprocessEndToEnd:
    def test_response_byte_identical_to_single_process_cli_and_golden(
        self, shard_client
    ):
        spec = golden_spec()
        body = shard_client.evaluate_bytes(spec)
        golden = (GOLDEN_DIR / "serve_evaluate.json").read_bytes()
        cli = (api.run(spec).to_json(indent=2, sort_keys=True) + "\n").encode()
        assert body == golden
        assert body == cli

    def test_repeat_hits_owner_worker_cache(self, shard_client):
        spec = golden_spec()
        first = shard_client.evaluate_response(spec)
        second = shard_client.evaluate_response(spec)
        assert first[0] == second[0] == 200
        assert second[1]["x-repro-cache"] == "hit"
        assert first[1]["x-repro-worker"] == second[1]["x-repro-worker"]
        assert first[2] == second[2]

    def test_worker_kill_reroutes_byte_identically(
        self, shard_live, shard_client
    ):
        """SIGKILL the spec's owner: the very next request fails over
        along the ring and answers the same bytes; the supervisor then
        respawns the slot."""
        spec = golden_spec()
        body_before = shard_client.evaluate_bytes(spec)
        router = shard_live.router
        owner = router.ring.lookup(spec_key(spec))
        slot = router.workers.slots[int(owner[1:])]
        assert slot.process is not None
        slot.process.kill()
        slot.process.wait(timeout=30)
        assert shard_client.evaluate_bytes(spec) == body_before
        deadline = time.monotonic() + 30
        while not all(w["alive"] for w in shard_client.healthz()["workers"]):
            assert time.monotonic() < deadline, "worker never respawned"
            time.sleep(0.05)
        assert slot.restarts >= 1
        # The respawned slot serves the same bytes from the same
        # cache namespace it had before the kill.
        assert shard_client.evaluate_bytes(spec) == body_before

    def test_health_and_metrics_endpoints(self, shard_client):
        health = shard_client.healthz()
        assert health["role"] == "router"
        assert len(health["workers"]) == 2
        payload = shard_client.metrics()
        assert sorted(payload["workers"]) == ["w0", "w1"]
        assert payload["tier_disk_cache"]["workers"] == 2
        assert payload["tier_disk_cache"]["entries"] >= 1

    def test_priority_header_reaches_worker_metrics(self, shard_client):
        shard_client.evaluate_bytes(cheap_spec(7), priority="batch")
        payload = shard_client.metrics()
        batch = sum(
            worker.get("metrics", {})
            .get("serve.requests_admitted.batch", {"value": 0})["value"]
            for worker in payload["workers"].values()
        )
        assert batch >= 1


class TestReshardByteIdentity:
    def test_worker_counts_answer_identically(self, tmp_path):
        """workers=1 and workers=3 serve the same bytes for the same
        specs — a reshard (different ring, different owners) changes
        placement only, never the answer."""
        spec = golden_spec()
        golden = (GOLDEN_DIR / "serve_evaluate.json").read_bytes()
        owners = {}
        for workers in (1, 3):
            config = ShardConfig(
                workers=workers,
                port=0,
                worker=ServerConfig(
                    port=0, jobs=1, linger_ms=1.0,
                    cache_dir=tmp_path / f"tier-{workers}",
                ),
            )
            with ShardThread(config) as handle:
                client = ServeClient(port=handle.port)
                status, headers, body = client.evaluate_response(spec)
                assert status == 200
                assert body == golden
                owners[workers] = headers["x-repro-worker"]
        assert owners[1] == "w0"
