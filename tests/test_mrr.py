"""Tests for the micro-ring modulator model."""

import pytest

from repro.phy.constants import WAVELENGTH_RATE_BPS
from repro.phy.mrr import MicroRingModulator

CARRIER = 193.1e12


class TestModulation:
    def test_modulate_applies_insertion_loss(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER, insertion_loss_db=3.0)
        signal = mrr.modulate(CARRIER, launch_power_dbm=10.0, rate_bps=100e9)
        assert signal.carrier_power_dbm == pytest.approx(7.0)

    def test_modulate_at_full_rate(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER)
        signal = mrr.modulate(CARRIER, 10.0, WAVELENGTH_RATE_BPS)
        assert signal.rate_bps == pytest.approx(224e9)

    def test_rate_above_limit_rejected(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER)
        with pytest.raises(ValueError):
            mrr.modulate(CARRIER, 10.0, WAVELENGTH_RATE_BPS * 1.01)

    def test_zero_rate_rejected(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER)
        with pytest.raises(ValueError):
            mrr.modulate(CARRIER, 10.0, 0.0)

    def test_carrier_outside_tuning_range_rejected(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER, tuning_range_hz=100e9)
        with pytest.raises(ValueError):
            mrr.modulate(CARRIER + 200e9, 10.0, 100e9)

    def test_can_modulate_respects_range(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER, tuning_range_hz=100e9)
        assert mrr.can_modulate(CARRIER + 50e9)
        assert not mrr.can_modulate(CARRIER + 150e9)


class TestEyeLevels:
    def test_levels_bracket_average(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER)
        signal = mrr.modulate(CARRIER, 10.0, 100e9)
        assert signal.one_level_factor > 1.0
        assert signal.zero_level_factor < 1.0

    def test_levels_average_to_one(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER)
        signal = mrr.modulate(CARRIER, 10.0, 100e9)
        avg = (signal.one_level_factor + signal.zero_level_factor) / 2
        assert avg == pytest.approx(1.0)

    def test_level_ratio_equals_extinction(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER, extinction_ratio_db=6.0)
        signal = mrr.modulate(CARRIER, 10.0, 100e9)
        ratio_db = 10 * __import__("math").log10(
            signal.one_level_factor / signal.zero_level_factor
        )
        assert ratio_db == pytest.approx(6.0)


class TestDetunePenalty:
    def test_zero_at_perfect_alignment(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER)
        assert mrr.detune_penalty_db(CARRIER) == pytest.approx(0.0)

    def test_three_db_at_half_linewidth(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER)
        assert mrr.detune_penalty_db(CARRIER + 25e9, linewidth_hz=50e9) == (
            pytest.approx(3.0103, rel=1e-3)
        )

    def test_penalty_grows_with_detuning(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER)
        small = mrr.detune_penalty_db(CARRIER + 10e9)
        large = mrr.detune_penalty_db(CARRIER + 40e9)
        assert large > small

    def test_invalid_linewidth_rejected(self):
        mrr = MicroRingModulator(resonance_hz=CARRIER)
        with pytest.raises(ValueError):
            mrr.detune_penalty_db(CARRIER, linewidth_hz=0.0)
