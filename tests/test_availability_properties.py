"""Property-based tests for the availability replay and fleet renewals.

Three guarantees, each over randomized inputs:

1. Arbitrary (overlapping, bursty, same-unit) failure traces keep the
   report invariants: every timeline point stays in ``[0, total_chips]``
   and the mean availability in ``[0, 1]``.
2. Traces where no blast unit sees more than one failure — the domain
   where the old per-event delta-sum accounting was *correct* — replay
   byte-identically to that old algorithm, reimplemented here as the
   oracle.
3. The fleet renewal process is a pure function of its seed: the same
   seed yields the same draws request-to-request, different seeds
   diverge, and one chip's draws never perturb another's.
"""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a CI dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.failures.availability import replay_trace
from repro.failures.inject import FailureEvent
from repro.fleet.process import RenewalFailureProcess
from repro.topology.tpu import GlobalChipId, TpuRack

HOUR = 3600.0
HORIZON_S = 24 * HOUR
TOTAL_CHIPS = 4096

coords = st.tuples(
    st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)
)

failure_events = st.builds(
    FailureEvent,
    time_s=st.floats(0.0, 2 * HORIZON_S, allow_nan=False),
    chip=st.builds(GlobalChipId, rack=st.integers(0, 63), coord=coords),
)

traces = st.lists(failure_events, max_size=24)


def _old_replay(events, total_chips, horizon_s, outage_chips,
                outage_duration_s, permanent_chips):
    """The pre-fix per-event delta-sum accounting (the oracle).

    Correct only when no blast unit sees two events; reimplemented
    verbatim so the byte-identity claim is against the real old math,
    not a paraphrase.
    """
    deltas = {}

    def add(t, delta):
        if t < horizon_s:
            deltas[t] = deltas.get(t, 0.0) + delta

    for event in sorted(events):
        add(event.time_s, -float(outage_chips))
        add(event.time_s + outage_duration_s,
            float(outage_chips - permanent_chips))
    timeline = []
    capacity = float(total_chips)
    lost = 0.0
    previous = 0.0
    for t in sorted(deltas):
        if t > previous:
            timeline.append((previous, t, capacity))
            lost += (total_chips - capacity) * (t - previous)
        capacity += deltas[t]
        previous = t
    if previous < horizon_s:
        timeline.append((previous, horizon_s, capacity))
        lost += (total_chips - capacity) * (horizon_s - previous)
    return tuple(timeline), lost


def _server_unit(event):
    return (
        event.chip.rack,
        tuple(
            c // b for c, b in zip(event.chip.coord, TpuRack.SERVER_BLOCK)
        ),
    )


class TestOverlapInvariants:
    @given(traces)
    @settings(max_examples=200, deadline=None)
    def test_invariants_hold_for_any_trace(self, events):
        rack_report, optical_report = replay_trace(
            events, TOTAL_CHIPS, HORIZON_S
        )
        for report in (rack_report, optical_report):
            assert 0.0 <= report.mean_availability <= 1.0
            for point in report.timeline:
                assert 0 <= point.available_chips <= TOTAL_CHIPS
            # Timeline tiles [0, horizon] contiguously.
            assert report.timeline[0].start_s == 0.0
            assert report.timeline[-1].end_s == HORIZON_S
            for a, b in zip(report.timeline, report.timeline[1:]):
                assert a.end_s == b.start_s

    @given(traces)
    @settings(max_examples=100, deadline=None)
    def test_optical_never_worse_than_migration(self, events):
        rack_report, optical_report = replay_trace(
            events, TOTAL_CHIPS, HORIZON_S
        )
        assert (
            optical_report.lost_chip_seconds
            <= rack_report.lost_chip_seconds
        )


class TestDisjointByteIdentity:
    """Where the old accounting was right, the new one matches bitwise."""

    @given(traces)
    @settings(max_examples=200, deadline=None)
    def test_one_event_per_unit_matches_old_path(self, events):
        # Keep the first event per blast unit (both granularities), the
        # domain where delta-sum accounting was correct.
        by_rack, by_server = {}, {}
        kept = []
        for event in sorted(events):
            rack, server = event.chip.rack, _server_unit(event)
            if rack in by_rack or server in by_server:
                continue
            by_rack[rack] = by_server[server] = event
            kept.append(event)

        from repro.failures.blast_radius import OpticalRepairPolicy
        from repro.failures.recovery import RackMigrationPolicy

        migration = RackMigrationPolicy()
        optical = OpticalRepairPolicy()
        rack_report, optical_report = replay_trace(
            kept, TOTAL_CHIPS, HORIZON_S
        )
        for report, outage, duration in (
            (rack_report, migration.blast_radius_chips(),
             migration.recovery_latency_s()),
            (optical_report, optical.blast_radius_chips(),
             optical.recovery_latency_s()),
        ):
            old_timeline, old_lost = _old_replay(
                kept, TOTAL_CHIPS, HORIZON_S, outage, duration, 1
            )
            new_timeline = tuple(
                (p.start_s, p.end_s, p.available_chips)
                for p in report.timeline
            )
            assert new_timeline == old_timeline
            assert report.lost_chip_seconds == old_lost


class TestRenewalDeterminism:
    @given(
        seed=st.integers(0, 2**31 - 1),
        chip=st.integers(0, 99),
        draws=st.integers(1, 8),
    )
    @settings(max_examples=100, deadline=None)
    def test_same_seed_same_trace(self, seed, chip, draws):
        first = RenewalFailureProcess(100, mtbf_s=1e6, seed=seed)
        second = RenewalFailureProcess(100, mtbf_s=1e6, seed=seed)
        a = [first.next_delay_s(chip) for _ in range(draws)]
        b = [second.next_delay_s(chip) for _ in range(draws)]
        assert a == b

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_streams_are_independent(self, seed):
        # Draining chip 0 must not perturb chip 1's stream.
        quiet = RenewalFailureProcess(2, mtbf_s=1e6, seed=seed)
        noisy = RenewalFailureProcess(2, mtbf_s=1e6, seed=seed)
        for _ in range(10):
            noisy.next_delay_s(0)
        assert quiet.next_delay_s(1) == noisy.next_delay_s(1)

    def test_different_seeds_diverge(self):
        a = RenewalFailureProcess(4, mtbf_s=1e6, seed=0)
        b = RenewalFailureProcess(4, mtbf_s=1e6, seed=1)
        assert a.next_delay_s(0) != b.next_delay_s(0)
