"""Tests for multi-rack job provisioning via the OCS."""

import pytest

from repro.topology.jobs import provision_job
from repro.topology.tpu import TpuCluster


@pytest.fixture
def cluster():
    return TpuCluster(rack_count=4)


class TestMultiRackJobs:
    def test_two_rack_job_spans_all_dimensions(self, cluster):
        job = provision_job(cluster, "big", chips=128)
        assert job.spans_racks
        assert job.torus.shape == (4, 4, 8)
        assert job.electrical_utilization == 1.0

    def test_splice_pays_ocs_latency(self, cluster):
        job = provision_job(cluster, "big", chips=128)
        assert job.setup_latency_s >= 20e-3  # OCS milliseconds

    def test_racks_actually_joined(self, cluster):
        provision_job(cluster, "big", chips=128)
        assert cluster.racks_joined(2, 0, 1)
        assert cluster.racks_joined(2, 1, 0)  # torus closed

    def test_single_whole_rack_job(self, cluster):
        job = provision_job(cluster, "rack", chips=64)
        assert job.racks == (0,)
        assert job.electrical_utilization == 1.0
        assert job.setup_latency_s == 0.0

    def test_four_rack_job(self, cluster):
        job = provision_job(cluster, "huge", chips=256)
        assert job.racks == (0, 1, 2, 3)
        assert job.torus.shape == (4, 4, 16)

    def test_partial_rack_multiple_rejected(self, cluster):
        with pytest.raises(ValueError):
            provision_job(cluster, "odd", chips=96)

    def test_too_many_racks_rejected(self, cluster):
        with pytest.raises(ValueError):
            provision_job(cluster, "galaxy", chips=64 * 5)


class TestSubRackJobs:
    def test_sixteen_chip_job_strands_one_dim(self, cluster):
        job = provision_job(cluster, "medium", chips=16)
        assert not job.spans_racks
        assert job.setup_latency_s == 0.0
        assert job.electrical_utilization == pytest.approx(2 / 3)

    def test_eight_chip_job_strands_two_dims(self, cluster):
        job = provision_job(cluster, "small", chips=8)
        assert job.electrical_utilization == pytest.approx(1 / 3)

    def test_shape_prefers_full_span(self, cluster):
        job = provision_job(cluster, "medium", chips=16)
        # (4, 4, 1)-family beats (2, 2, 4) etc.
        assert sorted(job.slc.shape) == [1, 4, 4]

    def test_untileable_count_rejected(self, cluster):
        with pytest.raises(ValueError):
            provision_job(cluster, "prime", chips=7)

    def test_zero_chips_rejected(self, cluster):
        with pytest.raises(ValueError):
            provision_job(cluster, "none", chips=0)


class TestPaperClaim:
    def test_full_utilization_only_across_racks(self, cluster):
        """The Section 4.1 claim: 3D utilization needs multi-rack span
        (or a whole rack, whose wrap links are its own)."""
        sub_rack = provision_job(cluster, "sub", chips=32, first_rack=1)
        multi_rack = provision_job(cluster, "multi", chips=128, first_rack=2)
        assert sub_rack.electrical_utilization < 1.0
        assert multi_rack.electrical_utilization == 1.0

    def test_ocs_vs_lightpath_setup_gap(self, cluster):
        """OCS splicing costs milliseconds; steering the same sub-rack
        job's bandwidth optically costs 3.7 us."""
        from repro.phy.constants import RECONFIG_LATENCY_S

        job = provision_job(cluster, "big", chips=128)
        assert job.setup_latency_s / RECONFIG_LATENCY_S > 1000
