"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

GOLDEN_DIR = Path(__file__).parent / "golden"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in (
            ["capabilities"],
            ["figure3a"],
            ["figure3b", "--seed", "7"],
            ["table1", "--buffer-mib", "16"],
            ["table2"],
            ["figure5"],
            ["figure6a", "--failed", "1", "2", "0"],
            ["figure7"],
            ["blast-radius", "--days", "30"],
        ):
            args = parser.parse_args(command)
            assert args.command == command[0]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])


class TestCommands:
    def test_capabilities_output(self, capsys):
        assert main(["capabilities"]) == 0
        out = capsys.readouterr().out
        assert "224 Gbps" in out
        assert "3.7 us" in out

    def test_figure3a_output(self, capsys):
        assert main(["figure3a"]) == 0
        out = capsys.readouterr().out
        assert "tau" in out

    def test_figure3b_output(self, capsys):
        assert main(["figure3b"]) == 0
        out = capsys.readouterr().out
        assert "0.25" in out

    def test_table1_output(self, capsys):
        assert main(["table1", "--buffer-mib", "8"]) == 0
        out = capsys.readouterr().out
        assert "7 x a" in out
        assert "3x" in out

    def test_table2_output(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "1.5x" in out

    def test_figure5_output(self, capsys):
        assert main(["figure5"]) == 0
        out = capsys.readouterr().out
        assert "Slice-1" in out and "67 %" in out

    def test_figure6a_returns_success_when_infeasible(self, capsys):
        assert main(["figure6a"]) == 0
        out = capsys.readouterr().out
        assert "exists: False" in out

    def test_figure7_output(self, capsys):
        assert main(["figure7"]) == 0
        out = capsys.readouterr().out
        assert "blast radius" in out

    def test_blast_radius_output(self, capsys):
        assert main(["blast-radius", "--days", "30", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "improvement: 16x" in out


class TestVersion:
    def test_version_flag_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.strip().split()[-1].count(".") == 2

    def test_version_matches_package_metadata(self, capsys):
        import repro

        with pytest.raises(SystemExit):
            main(["--version"])
        assert repro.__version__ in capsys.readouterr().out


class TestNewCommands:
    def test_new_commands_parse(self):
        parser = build_parser()
        for command in (
            ["congestion"],
            ["congestion", "--fabric", "switched"],
            ["simulate"],
            ["simulate", "--fabric", "electrical", "--buffer-mib", "8"],
        ):
            args = parser.parse_args(command)
            assert args.command == command[0]

    def test_congestion_default_is_electrical(self, capsys):
        assert main(["congestion"]) == 0
        out = capsys.readouterr().out
        assert "shared" in out.lower()

    def test_congestion_switched_reports_contention(self, capsys):
        assert main(["congestion", "--fabric", "switched"]) == 0
        assert "contention" in capsys.readouterr().out.lower()

    def test_simulate_photonic(self, capsys):
        assert main(["simulate", "--buffer-mib", "1"]) == 0
        out = capsys.readouterr().out
        assert "Slice-1" in out

    def test_unknown_fabric_is_a_clean_error(self, capsys):
        assert main(["congestion", "--fabric", "warpdrive"]) != 0
        err = capsys.readouterr().err
        assert "warpdrive" in err


class TestSweepCommand:
    def args(self, *extra):
        return [
            "sweep", "--slice-shape", "4x2x1", "--buffer-mib", "1",
            "--no-cache", *extra,
        ]

    def test_parses(self):
        args = build_parser().parse_args(
            ["sweep", "--fabric", "photonic", "--slice-shape", "4x4x2",
             "--buffer-mib", "16", "--jobs", "4", "--cache-dir", "/tmp/x"]
        )
        assert args.command == "sweep"
        assert args.fabrics == ["photonic"]
        assert args.slice_shapes == [(4, 4, 2)]
        assert args.jobs == 4

    def test_bad_shape_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--slice-shape", "4xbad"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--slice-shape", "0x2x1"])

    def test_json_output(self, capsys):
        assert main(self.args()) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["spec_count"] == len(payload["runs"]) == 2
        assert payload["plan"]["slice_shapes"] == [[4, 2, 1]]
        # Timing goes to stderr, never into the JSON payload.
        assert "wall_clock_s" not in payload
        assert "swept 2 specs" in captured.err

    def test_serial_and_parallel_output_identical(self, capsys):
        assert main(self.args("--jobs", "1")) == 0
        serial = capsys.readouterr().out
        assert main(self.args("--jobs", "2")) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_cache_dir_round_trip(self, capsys, tmp_path):
        base = ["sweep", "--slice-shape", "4x2x1", "--buffer-mib", "1",
                "--cache-dir", str(tmp_path)]
        assert main(base) == 0
        cold = capsys.readouterr()
        assert "2 misses" in cold.err
        assert main(base) == 0
        warm = capsys.readouterr()
        assert "2 hits" in warm.err
        assert warm.out == cold.out

    def test_single_chip_grid_is_a_clean_error(self, capsys):
        assert main(["sweep", "--slice-shape", "1x1x1", "--no-cache"]) == 2
        assert "single chip" in capsys.readouterr().err

    def test_stderr_is_json_records_plus_summary(self, capsys):
        # Satellite contract: every stderr line but the last is one JSON
        # timing record; the last line is the human summary.
        assert main(self.args()) == 0
        lines = capsys.readouterr().err.strip().splitlines()
        *records, summary = lines
        assert "swept 2 specs" in summary
        parsed = [json.loads(line) for line in records]
        assert len(parsed) == 2
        for index, record in enumerate(parsed):
            assert record["spec_index"] == index
            assert record["fabric"] in ("electrical", "photonic")
            assert record["mode"] == "closed_form"
            assert len(record["spec_key"]) == 12
            assert record["elapsed_s"] >= 0
            assert record["from_cache"] is False
            assert record["worker"] > 0

    def test_metrics_file_written(self, capsys, tmp_path):
        out = tmp_path / "sweep-metrics.json"
        assert main(self.args("--metrics", str(out))) == 0
        capsys.readouterr()
        snapshot = json.loads(out.read_text())
        assert snapshot["sweep.specs"]["value"] == 2.0
        assert snapshot["sweep.spec_elapsed_s"]["count"] == 2
        for stage in ("plan", "evaluate", "merge"):
            assert f"sweep.{stage}_seconds" in snapshot


class TestTraceCommand:
    def test_parses(self):
        args = build_parser().parse_args(
            ["trace", "--fabric", "electrical", "--layout", "figure5b",
             "--categories", "schedule,phase", "--out", "/tmp/x.json"]
        )
        assert args.command == "trace"
        assert args.categories == ("schedule", "phase")

    def test_bad_categories_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--categories", ","])

    def test_unknown_category_is_a_clean_error(self, capsys):
        assert main(["trace", "--categories", "nonsense"]) == 2
        assert "nonsense" in capsys.readouterr().err

    def test_stdout_is_valid_chrome_trace(self, capsys):
        assert main(["trace", "--categories", "reconfig,failure,recovery"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X" and e["cat"] == "reconfig"]
        assert spans and all(
            e["dur"] == pytest.approx(3.7) for e in spans
        )
        assert any(e["cat"] == "failure" for e in events)
        assert "trace:" in captured.err

    def test_out_file_and_determinism(self, capsys, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["trace", "--out", str(first)]) == 0
        assert main(["trace", "--out", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_no_failure_drops_recovery_events(self, capsys):
        assert main(["trace", "--no-failure"]) == 0
        payload = json.loads(capsys.readouterr().out)
        categories = {e.get("cat") for e in payload["traceEvents"]}
        assert "failure" not in categories
        assert "recovery" not in categories
        assert "schedule" in categories


class TestMetricsFlag:
    def test_simulate_metrics_golden_and_stdout_untouched(
        self, capsys, tmp_path
    ):
        out = tmp_path / "metrics.json"
        assert main(["simulate", "--metrics", str(out)]) == 0
        captured = capsys.readouterr()
        assert captured.out == (GOLDEN_DIR / "simulate.txt").read_text()
        assert out.read_text() == (GOLDEN_DIR / "metrics.json").read_text()

    def test_utilization_metrics_covers_both_fabrics(self, capsys, tmp_path):
        out = tmp_path / "util-metrics.json"
        assert main(["utilization", "--metrics", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert set(payload) == {"electrical", "photonic"}
        for fabric in payload.values():
            names = [entry["name"] for entry in fabric["entries"]]
            assert "sim.flows_completed" in names


class TestSweepJobsValidation:
    """Satellite: ``--jobs`` rejects non-positive values at parse time."""

    @pytest.mark.parametrize("value", ["0", "-1", "-4", "1.5", "two"])
    def test_non_positive_jobs_rejected(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["sweep", "--jobs", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err
        assert "positive integer" in err

    def test_auto_means_all_cpus(self):
        args = build_parser().parse_args(["sweep", "--jobs", "auto"])
        assert args.jobs == 0  # the run_many sentinel for "all CPUs"

    def test_positive_jobs_accepted(self):
        args = build_parser().parse_args(["sweep", "--jobs", "3"])
        assert args.jobs == 3


class TestServeParser:
    def test_parses_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8421
        assert args.queue_limit == 64

    def test_all_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--host", "0.0.0.0", "--port", "0", "--jobs", "4",
            "--max-batch", "16", "--linger-ms", "5", "--queue-limit", "128",
            "--timeout-s", "30", "--no-cache", "--cache-max-entries", "100",
            "--cache-max-bytes", "1000000",
        ])
        assert args.port == 0
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_max_entries == 100

    def test_serve_jobs_rejects_non_positive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--jobs", "0"])
        assert "positive integer" in capsys.readouterr().err

    def test_serve_jobs_auto(self):
        args = build_parser().parse_args(["serve", "--jobs", "auto"])
        assert args.jobs == 0
