"""Tests for the consistent-hash ring behind the sharded serving tier.

The properties that make :class:`~repro.serve.shard.HashRing` safe to
route a cache-sharded tier with: placement is a pure function of the key
bytes (no ``PYTHONHASHSEED``, identical across processes and runs),
resizing N -> N±1 moves only ~1/N of a randomized key population (and
*only* onto/off the changed node), load spreads evenly across nodes, and
the failover order is a stable permutation every router agrees on.
"""

import os
import random
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.api import ScenarioSpec, SliceSpec, spec_key
from repro.serve import HashRing

SRC = str(Path(__file__).resolve().parent.parent / "src")


def nodes(n):
    return [f"w{i}" for i in range(n)]


def random_keys(count, seed=7):
    """A randomized key population, shaped like spec keys (hex digests)."""
    rng = random.Random(seed)
    return [f"{rng.getrandbits(256):064x}" for _ in range(count)]


def spec_keys(count):
    """Real ``spec_key`` values — the strings the router actually routes."""
    return [
        spec_key(
            ScenarioSpec(
                fabric="electrical",
                slices=(SliceSpec("S", (2, 2, 1), (0, 0, 0)),),
                outputs=("costs",),
                seed=seed,
            )
        )
        for seed in range(count)
    ]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            HashRing(["w0", "w0"])

    def test_rejects_bad_replicas(self):
        with pytest.raises(ValueError):
            HashRing(["w0"], replicas=0)

    def test_nodes_sorted_and_counted(self):
        ring = HashRing(["w2", "w0", "w1"])
        assert ring.nodes == ("w0", "w1", "w2")
        assert len(ring) == 3

    def test_with_nodes_keeps_replicas(self):
        ring = HashRing(nodes(2), replicas=16)
        assert ring.with_nodes(nodes(3)).replicas == 16


class TestPlacement:
    def test_single_node_owns_everything(self):
        ring = HashRing(["w0"])
        assert all(ring.lookup(k) == "w0" for k in random_keys(50))

    def test_lookup_is_deterministic(self):
        ring = HashRing(nodes(4))
        again = HashRing(nodes(4))
        for key in random_keys(200):
            assert ring.lookup(key) == again.lookup(key)

    def test_lookup_order_is_stable_permutation(self):
        ring = HashRing(nodes(4))
        for key in random_keys(50):
            order = ring.lookup_order(key)
            assert sorted(order) == sorted(ring.nodes)
            assert order[0] == ring.lookup(key)
            assert order == ring.lookup_order(key)

    def test_balance_within_factor_of_mean(self):
        keys = random_keys(2000)
        for n in (2, 3, 4, 8):
            loads = Counter(HashRing(nodes(n)).lookup(k) for k in keys)
            mean = len(keys) / n
            assert len(loads) == n, "some node owns no keys"
            assert max(loads.values()) <= 1.75 * mean
            assert min(loads.values()) >= 0.4 * mean

    def test_real_spec_keys_balance(self):
        keys = spec_keys(200)
        loads = Counter(HashRing(nodes(4)).lookup(k) for k in keys)
        assert len(loads) == 4
        assert max(loads.values()) <= 1.75 * len(keys) / 4


class TestReshard:
    """Growing or shrinking the tier moves ~1/N of the keys, no more."""

    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_adding_a_node_moves_about_1_over_n(self, n):
        keys = random_keys(2000)
        ring = HashRing(nodes(n))
        grown = ring.with_nodes(nodes(n + 1))
        moved = [k for k in keys if ring.lookup(k) != grown.lookup(k)]
        # Ideal is K/(N+1); allow 50% slack for ring-arc variance.
        assert len(moved) <= 1.5 * len(keys) / (n + 1)
        # Strict consistency: a moved key moved *onto* the new node.
        assert all(grown.lookup(k) == f"w{n}" for k in moved)

    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_removing_a_node_moves_only_its_keys(self, n):
        keys = random_keys(2000)
        ring = HashRing(nodes(n + 1))
        shrunk = ring.with_nodes(nodes(n))
        moved = [k for k in keys if ring.lookup(k) != shrunk.lookup(k)]
        assert len(moved) <= 1.5 * len(keys) / (n + 1)
        # Only keys the removed node owned had to move.
        assert all(ring.lookup(k) == f"w{n}" for k in moved)

    def test_survivor_keys_keep_their_failover_owner(self):
        """A key's post-removal owner is its pre-removal first failover —
        the ring walk and the reshard agree, so a failover during a
        restart warms exactly the cache that would own the key if the
        node were gone for good."""
        ring = HashRing(nodes(4))
        shrunk = ring.with_nodes(nodes(3))
        for key in random_keys(300):
            if ring.lookup(key) != "w3":
                continue
            order = [n for n in ring.lookup_order(key) if n != "w3"]
            assert shrunk.lookup(key) == order[0]


class TestCrossProcessDeterminism:
    def test_placement_survives_hash_randomization(self):
        """Two fresh interpreters with different ``PYTHONHASHSEED`` agree
        on every placement — the ring is sha256-addressed, not hash()."""
        keys = random_keys(64)
        script = (
            "from repro.serve import HashRing\n"
            "ring = HashRing(['w0', 'w1', 'w2'])\n"
            "import sys\n"
            "for key in sys.argv[1:]:\n"
            "    print(ring.lookup(key))\n"
        )

        def placements(hash_seed):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
            return subprocess.run(
                [sys.executable, "-c", script, *keys],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout.splitlines()

        local = HashRing(["w0", "w1", "w2"])
        expected = [local.lookup(k) for k in keys]
        assert placements("0") == expected
        assert placements("12345") == expected
