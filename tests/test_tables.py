"""Tests for the text-table / histogram renderers."""

import pytest

from repro.analysis.tables import cost_row, render_histogram, render_table
from repro.collectives.cost_model import CollectiveCost


class TestRenderTable:
    def test_includes_headers_and_rows(self):
        text = render_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "1" in lines[2]
        assert "4" in lines[3]

    def test_title_prepended(self):
        text = render_table(["x"], [["1"]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_column_alignment(self):
        text = render_table(["name", "v"], [["long-name-here", "1"]])
        header, rule, row = text.splitlines()
        assert header.index("|") == row.index("|")

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestCostRow:
    def test_row_shape(self):
        electrical = CollectiveCost(7, 2.625)
        optical = CollectiveCost(7, 0.875, 1)
        row = cost_row("Slice-1", electrical, optical)
        assert row[0] == "Slice-1"
        assert row[1] == "7 x a"
        assert row[2] == "7 x a + r"
        assert row[5] == "3x"

    def test_infinite_ratio(self):
        row = cost_row("z", CollectiveCost(1, 1.0), CollectiveCost(0, 0.0))
        assert row[5] == "infx"


class TestHistogram:
    def test_bar_lengths_scale(self):
        text = render_histogram([0.0, 0.5, 1.0], [10, 5], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_counts_shown(self):
        text = render_histogram([0.0, 1.0], [42])
        assert "42" in text

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ValueError):
            render_histogram([0.0, 1.0], [1, 2])
