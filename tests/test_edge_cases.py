"""Targeted edge-case and error-path tests across modules."""

import pytest

from repro.core.circuits import CircuitError, CircuitManager
from repro.core.fabric import LightpathRackFabric
from repro.core.tile import Direction
from repro.core.wafer import LightpathWafer
from repro.topology.tpu import TpuRack


class TestWaferEdges:
    def test_fiber_port_exhaustion_returns_none(self):
        wafer = LightpathWafer(grid=(1, 2), fibers_per_edge=1)
        port = wafer.free_fiber_port((0, 0), Direction.NORTH)
        port.allocate("x")
        assert wafer.free_fiber_port((0, 0), Direction.NORTH) is None

    def test_single_row_wafer_has_no_vertical_buses(self):
        wafer = LightpathWafer(grid=(1, 4))
        with pytest.raises(KeyError):
            wafer.bus((0, 0), (1, 0))

    def test_single_tile_wafer(self):
        wafer = LightpathWafer(grid=(1, 1))
        assert wafer.tile_count == 1
        assert wafer.buses() == []
        assert wafer.neighbors((0, 0)) == []

    def test_capabilities_of_busless_wafer(self):
        wafer = LightpathWafer(grid=(1, 1))
        assert wafer.capabilities().waveguides_per_tile == 0


class TestCircuitManagerEdges:
    def test_circuit_on_single_tile_wafer_impossible(self):
        manager = CircuitManager(wafer=LightpathWafer(grid=(1, 1)))
        with pytest.raises(CircuitError):
            manager.establish((0, 0), (0, 0))

    def test_failed_source_tile_rejected(self):
        manager = CircuitManager(wafer=LightpathWafer())
        manager.wafer.tile((0, 0)).fail()
        with pytest.raises(CircuitError):
            manager.establish((0, 0), (0, 1))

    def test_all_lasers_failed_rejected(self):
        manager = CircuitManager(wafer=LightpathWafer())
        for i in range(16):
            manager.wafer.tile((0, 0)).lasers.fail(i)
        with pytest.raises(CircuitError):
            manager.establish((0, 0), (0, 1))

    def test_destination_serdes_exhaustion(self):
        manager = CircuitManager(wafer=LightpathWafer())
        # Fill the destination's 16 lanes from 16 distinct sources.
        sources = [(r, c) for r in range(4) for c in range(8)][:17]
        dst = (3, 7)
        established = 0
        with pytest.raises(CircuitError):
            for src in sources:
                if src == dst:
                    continue
                manager.establish(src, dst)
                established += 1
        assert established == 16


class TestRackFabricEdges:
    def test_trunk_detour_when_direct_exhausted(self):
        fabric = LightpathRackFabric(TpuRack(0), fibers_per_trunk=1)
        # Two circuits between the same server pair: the second must take
        # a longer server path (or a different trunk) since the direct
        # trunk has one fiber.
        first = fabric.establish((0, 0, 0), (0, 0, 1))
        second = fabric.establish((1, 0, 0), (1, 0, 1))
        assert first.fiber_hops >= 1
        assert second.fiber_hops >= 1
        paths = {first.server_path, second.server_path}
        # Either a detour happened or the chips map to distinct trunks.
        assert len(paths) == 2 or second.fiber_hops > first.fiber_hops

    def test_teardown_unknown_circuit(self):
        fabric = LightpathRackFabric(TpuRack(0))
        with pytest.raises(KeyError):
            fabric.teardown(1234)

    def test_both_endpoints_failed(self):
        fabric = LightpathRackFabric(TpuRack(0))
        fabric.rack.fail_chip((0, 0, 0))
        fabric.rack.fail_chip((3, 3, 3))
        with pytest.raises(CircuitError):
            fabric.establish((0, 0, 0), (3, 3, 3))


class TestRunnerEdges:
    def test_schedule_with_zero_byte_phase(self):
        from repro.collectives.schedule import CollectiveSchedule, Phase, Transfer
        from repro.sim.runner import run_schedule
        from repro.topology.torus import Link

        schedule = CollectiveSchedule(name="zeros")
        schedule.add_phase(
            Phase(
                transfers=[
                    Transfer(src=(0,), dst=(1,), n_bytes=0.0, path=((0,), (1,)))
                ]
            )
        )
        result = run_schedule(schedule, {Link((0,), (1,)): 1.0})
        assert result.transfer_s == 0.0
        assert result.phase_durations_s == (0.0,)

    def test_empty_schedule(self):
        from repro.collectives.schedule import CollectiveSchedule
        from repro.sim.runner import run_schedule

        result = run_schedule(CollectiveSchedule(name="empty"), {})
        assert result.duration_s == 0.0

    def test_missing_link_capacity_raises(self):
        from repro.collectives.schedule import CollectiveSchedule, Phase, Transfer
        from repro.sim.runner import run_schedule

        schedule = CollectiveSchedule(name="bad")
        schedule.add_phase(
            Phase(
                transfers=[
                    Transfer(src=(0,), dst=(1,), n_bytes=1.0, path=((0,), (1,)))
                ]
            )
        )
        with pytest.raises(KeyError):
            run_schedule(schedule, {})


class TestAllToAllPathEdges:
    def test_dimension_ordered_path_uses_wrap(self):
        from repro.collectives.alltoall import _dimension_ordered_torus_path
        from repro.topology.slices import Slice
        from repro.topology.torus import Torus

        rack = Torus((4, 4, 4))
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 4, 4))
        path = _dimension_ordered_torus_path(slc, (0, 0, 0), (3, 0, 0))
        # Wrap is shorter than walking forward three hops.
        assert path == ((0, 0, 0), (3, 0, 0))

    def test_dimension_ordered_path_multi_dim(self):
        from repro.collectives.alltoall import _dimension_ordered_torus_path
        from repro.topology.slices import Slice
        from repro.topology.torus import Torus

        rack = Torus((4, 4, 4))
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 4, 4))
        path = _dimension_ordered_torus_path(slc, (0, 0, 0), (1, 1, 1))
        assert len(path) == 4  # three single hops
        assert path[0] == (0, 0, 0) and path[-1] == (1, 1, 1)


class TestMziPaperAssertion:
    def test_assert_matches_paper_detects_drift(self, monkeypatch):
        import repro.phy.mzi as mzi_module

        monkeypatch.setattr(
            mzi_module, "RECONFIG_LATENCY_S", 1.0e-6, raising=True
        )
        with pytest.raises(AssertionError):
            mzi_module.assert_matches_paper()


class TestCliEdges:
    def test_figure6a_custom_failed_chip(self, capsys):
        from repro.cli import main

        assert main(["figure6a", "--failed", "2", "1", "0"]) == 0
        assert "(2, 1, 0)" in capsys.readouterr().out

    def test_figure7_custom_failed_chip(self, capsys):
        from repro.cli import main

        assert main(["figure7", "--failed", "0", "1", "0"]) == 0
        out = capsys.readouterr().out
        assert "3.7 us" in out
