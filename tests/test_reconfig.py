"""Tests for reconfiguration scheduling and the r-amortization analysis."""

import pytest

from repro.core.reconfig import (
    ReconfigurationPlan,
    ReconfigurationScheduler,
    SwitchProgram,
    breakeven_buffer_bytes,
)
from repro.core.tile import Direction


def program(tile=(0, 0), wavelength=0):
    return SwitchProgram(
        tile=tile,
        facing=Direction.NORTH,
        wavelength_index=wavelength,
        towards=Direction.EAST,
    )


class TestPlanLatency:
    def test_empty_plan_free(self):
        assert ReconfigurationPlan().latency_s() == 0.0

    def test_parallel_batch_costs_one_settle(self):
        plan = ReconfigurationPlan(parallel=True)
        for i in range(10):
            plan.add(program(wavelength=i))
        assert plan.latency_s() == pytest.approx(3.7e-6)

    def test_serial_chain_costs_per_operation(self):
        plan = ReconfigurationPlan(parallel=False)
        for i in range(10):
            plan.add(program(wavelength=i))
        assert plan.latency_s() == pytest.approx(37e-6)

    def test_tiles_touched(self):
        plan = ReconfigurationPlan()
        plan.add(program(tile=(0, 0)))
        plan.add(program(tile=(0, 0), wavelength=1))
        plan.add(program(tile=(1, 1)))
        assert plan.tiles_touched() == {(0, 0), (1, 1)}


class TestScheduler:
    def test_accumulates_latency_and_ops(self):
        scheduler = ReconfigurationScheduler()
        plan = scheduler.new_plan()
        plan.add(program())
        plan.add(program(wavelength=1))
        assert scheduler.apply(plan) == pytest.approx(3.7e-6)
        assert scheduler.total_latency_s == pytest.approx(3.7e-6)
        assert scheduler.total_operations == 2
        assert scheduler.batch_count == 1

    def test_scheduler_mode_propagates(self):
        scheduler = ReconfigurationScheduler(parallel=False)
        plan = scheduler.new_plan()
        assert plan.parallel is False


class TestBreakeven:
    def test_table1_breakeven_is_small(self):
        # Slice-1 saves 2.625 - 0.875 = 1.75 beta-factor units; at 448 GB/s
        # the breakeven buffer is under 1 MiB — reconfiguration pays off for
        # any realistic ML gradient buffer.
        n_star = breakeven_buffer_bytes(
            speedup_beta_factor=1.75, chip_bandwidth_bytes=448e9
        )
        assert n_star < 1 << 20

    def test_breakeven_scales_with_r(self):
        slow = breakeven_buffer_bytes(1.0, 448e9, reconfig_s=1e-3)
        fast = breakeven_buffer_bytes(1.0, 448e9, reconfig_s=3.7e-6)
        assert slow / fast == pytest.approx(1e-3 / 3.7e-6)

    def test_breakeven_formula(self):
        assert breakeven_buffer_bytes(2.0, 100.0, reconfig_s=1.0) == pytest.approx(
            50.0
        )

    def test_no_speedup_rejected(self):
        with pytest.raises(ValueError):
            breakeven_buffer_bytes(0.0, 448e9)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            breakeven_buffer_bytes(1.0, 0.0)
