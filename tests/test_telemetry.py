"""Tests for link-utilization telemetry."""

import pytest

from repro.sim.engine import EventEngine
from repro.sim.flows import Flow
from repro.sim.telemetry import InstrumentedNetwork, LinkTelemetry


class TestLinkTelemetry:
    def test_record_and_carried_bytes(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        telemetry.record(0.0, 2.0, {"l1": 5.0})
        assert telemetry.carried_bytes("l1") == pytest.approx(10.0)

    def test_zero_length_interval_ignored(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        telemetry.record(1.0, 1.0, {"l1": 5.0})
        assert telemetry.carried_bytes("l1") == 0.0

    def test_negative_interval_rejected(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        with pytest.raises(ValueError):
            telemetry.record(2.0, 1.0, {"l1": 5.0})

    def test_utilization(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        telemetry.record(0.0, 5.0, {"l1": 5.0})
        assert telemetry.utilization("l1", horizon_s=10.0) == pytest.approx(0.25)

    def test_utilization_validation(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        with pytest.raises(ValueError):
            telemetry.utilization("l1", horizon_s=0.0)
        with pytest.raises(KeyError):
            telemetry.utilization("ghost", horizon_s=1.0)

    def test_busiest_and_idle_links(self):
        telemetry = LinkTelemetry(capacities={"a": 10.0, "b": 10.0, "c": 10.0})
        telemetry.record(0.0, 1.0, {"a": 9.0, "b": 1.0})
        busiest = telemetry.busiest_links(top=2)
        assert busiest[0][0] == "a"
        assert telemetry.idle_links() == ["c"]

    def test_mean_utilization(self):
        telemetry = LinkTelemetry(capacities={"a": 10.0, "b": 10.0})
        telemetry.record(0.0, 1.0, {"a": 10.0})
        assert telemetry.mean_utilization(horizon_s=1.0) == pytest.approx(0.5)


class TestInstrumentedNetwork:
    def test_single_flow_fully_accounted(self):
        engine = EventEngine()
        network = InstrumentedNetwork(engine, {"l1": 10.0})
        network.inject(Flow("a", ("l1",), remaining_bytes=100.0))
        network.run_until_idle()
        assert network.telemetry.carried_bytes("l1") == pytest.approx(100.0)

    def test_shared_link_accounts_both_flows(self):
        engine = EventEngine()
        network = InstrumentedNetwork(engine, {"l1": 10.0})
        network.inject(Flow("a", ("l1",), 60.0))
        network.inject(Flow("b", ("l1",), 40.0))
        network.run_until_idle()
        assert network.telemetry.carried_bytes("l1") == pytest.approx(100.0)

    def test_bottleneck_runs_at_full_utilization(self):
        engine = EventEngine()
        network = InstrumentedNetwork(engine, {"l1": 10.0})
        network.inject(Flow("a", ("l1",), 50.0))
        horizon = network.run_until_idle()
        assert network.telemetry.utilization("l1", horizon) == pytest.approx(1.0)

    def test_idle_links_detected(self):
        engine = EventEngine()
        network = InstrumentedNetwork(engine, {"l1": 10.0, "l2": 10.0})
        network.inject(Flow("a", ("l1",), 50.0))
        network.run_until_idle()
        assert network.telemetry.idle_links() == ["l2"]

    def test_multihop_flow_counts_on_every_link(self):
        engine = EventEngine()
        network = InstrumentedNetwork(engine, {"l1": 10.0, "l2": 20.0})
        network.inject(Flow("a", ("l1", "l2"), 100.0))
        network.run_until_idle()
        assert network.telemetry.carried_bytes("l1") == pytest.approx(100.0)
        assert network.telemetry.carried_bytes("l2") == pytest.approx(100.0)
