"""Tests for link-utilization telemetry."""

import pytest

from repro.sim.engine import EventEngine
from repro.sim.flows import Flow
from repro.sim.telemetry import InstrumentedNetwork, LinkTelemetry


class TestLinkTelemetry:
    def test_record_and_carried_bytes(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        telemetry.record(0.0, 2.0, {"l1": 5.0})
        assert telemetry.carried_bytes("l1") == pytest.approx(10.0)

    def test_zero_length_interval_ignored(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        telemetry.record(1.0, 1.0, {"l1": 5.0})
        assert telemetry.carried_bytes("l1") == 0.0

    def test_negative_interval_rejected(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        with pytest.raises(ValueError):
            telemetry.record(2.0, 1.0, {"l1": 5.0})

    def test_utilization(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        telemetry.record(0.0, 5.0, {"l1": 5.0})
        assert telemetry.utilization("l1", horizon_s=10.0) == pytest.approx(0.25)

    def test_utilization_validation(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        with pytest.raises(ValueError):
            telemetry.utilization("l1", horizon_s=0.0)
        with pytest.raises(KeyError):
            telemetry.utilization("ghost", horizon_s=1.0)

    def test_busiest_and_idle_links(self):
        telemetry = LinkTelemetry(capacities={"a": 10.0, "b": 10.0, "c": 10.0})
        telemetry.record(0.0, 1.0, {"a": 9.0, "b": 1.0})
        busiest = telemetry.busiest_links(top=2)
        assert busiest[0][0] == "a"
        assert telemetry.idle_links() == ["c"]

    def test_mean_utilization(self):
        telemetry = LinkTelemetry(capacities={"a": 10.0, "b": 10.0})
        telemetry.record(0.0, 1.0, {"a": 10.0})
        assert telemetry.mean_utilization(horizon_s=1.0) == pytest.approx(0.5)

    def test_record_unknown_link_raises(self):
        # Regression: samples on links missing from `capacities` used to
        # be dropped silently, surfacing much later as a KeyError from
        # utilization() — or worse, as the link being reported idle.
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        with pytest.raises(KeyError, match="ghost"):
            telemetry.record(0.0, 1.0, {"l1": 5.0, "ghost": 5.0})
        # The rejected call must not have half-recorded the known link.
        assert telemetry.carried_bytes("l1") == 0.0

    def test_idle_links_tolerates_float_dust(self):
        # Regression: idleness used to be `carried == 0.0`, so a link
        # that accumulated a few ulps of integration drift was counted
        # as busy. Idleness is now relative to the busiest link.
        telemetry = LinkTelemetry(capacities={"busy": 10.0, "dusty": 10.0})
        telemetry.record(0.0, 1.0, {"busy": 10.0})
        telemetry.record(0.0, 1e-12, {"dusty": 1e-4})
        assert telemetry.idle_links() == ["dusty"]
        # An explicit zero tolerance restores exact comparison.
        assert telemetry.idle_links(tolerance=0.0) == []

    def test_idle_links_all_idle_when_nothing_recorded(self):
        telemetry = LinkTelemetry(capacities={"a": 10.0, "b": 10.0})
        assert telemetry.idle_links() == ["a", "b"]

    def test_peak_rate_and_peak_utilization(self):
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        telemetry.record(0.0, 1.0, {"l1": 4.0})
        telemetry.record(1.0, 2.0, {"l1": 8.0})
        assert telemetry.peak_rate("l1") == pytest.approx(8.0)
        assert telemetry.peak_utilization("l1") == pytest.approx(0.8)
        assert telemetry.peak_rate("never-used") == 0.0


class TestInstrumentedNetwork:
    def test_single_flow_fully_accounted(self):
        engine = EventEngine()
        network = InstrumentedNetwork(engine, {"l1": 10.0})
        network.inject(Flow("a", ("l1",), remaining_bytes=100.0))
        network.run_until_idle()
        assert network.telemetry.carried_bytes("l1") == pytest.approx(100.0)

    def test_shared_link_accounts_both_flows(self):
        engine = EventEngine()
        network = InstrumentedNetwork(engine, {"l1": 10.0})
        network.inject(Flow("a", ("l1",), 60.0))
        network.inject(Flow("b", ("l1",), 40.0))
        network.run_until_idle()
        assert network.telemetry.carried_bytes("l1") == pytest.approx(100.0)

    def test_bottleneck_runs_at_full_utilization(self):
        engine = EventEngine()
        network = InstrumentedNetwork(engine, {"l1": 10.0})
        network.inject(Flow("a", ("l1",), 50.0))
        horizon = network.run_until_idle()
        assert network.telemetry.utilization("l1", horizon) == pytest.approx(1.0)

    def test_idle_links_detected(self):
        engine = EventEngine()
        network = InstrumentedNetwork(engine, {"l1": 10.0, "l2": 10.0})
        network.inject(Flow("a", ("l1",), 50.0))
        network.run_until_idle()
        assert network.telemetry.idle_links() == ["l2"]

    def test_multihop_flow_counts_on_every_link(self):
        engine = EventEngine()
        network = InstrumentedNetwork(engine, {"l1": 10.0, "l2": 20.0})
        network.inject(Flow("a", ("l1", "l2"), 100.0))
        network.run_until_idle()
        assert network.telemetry.carried_bytes("l1") == pytest.approx(100.0)
        assert network.telemetry.carried_bytes("l2") == pytest.approx(100.0)

    def test_shared_telemetry_accumulates_across_networks(self):
        # The schedule runner builds a fresh network per phase; handing
        # each one the same telemetry must stitch their timelines.
        engine = EventEngine()
        telemetry = LinkTelemetry(capacities={"l1": 10.0})
        first = InstrumentedNetwork(engine, {"l1": 10.0}, telemetry=telemetry)
        first.inject(Flow("a", ("l1",), 50.0))
        first.run_until_idle()
        second = InstrumentedNetwork(engine, {"l1": 10.0}, telemetry=telemetry)
        second.inject(Flow("b", ("l1",), 30.0))
        second.run_until_idle()
        assert second.telemetry is telemetry
        assert telemetry.carried_bytes("l1") == pytest.approx(80.0)
