"""Tests for the structured JSONL event log (``repro.obs.log``)."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.log import (
    DEBUG,
    ERROR,
    EVENT_FIELDS,
    INFO,
    LEVELS,
    NULL_LOG,
    WARNING,
    EventLog,
    demo_events,
)

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden" / "obs_log.jsonl"


def make_log(level="debug", source="test"):
    stream = io.StringIO()
    ticks = iter(range(10_000))
    log = EventLog(
        stream, level=level, source=source,
        clock=lambda: next(ticks) / 10,
    )
    return log, stream


def records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEventLog:
    def test_record_shape_and_sorted_keys(self):
        log, stream = make_log()
        log.info("request.admitted", priority="interactive")
        (line,) = stream.getvalue().splitlines()
        assert line == (
            '{"event":"request.admitted","level":"info",'
            '"priority":"interactive","source":"test","ts":0.0}'
        )

    def test_undeclared_event_raises(self):
        log, _ = make_log()
        with pytest.raises(ValueError, match="undeclared event"):
            log.info("request.teleported")

    def test_missing_required_field_raises(self):
        log, _ = make_log()
        with pytest.raises(ValueError, match="missing fields"):
            log.info("worker.spawn", slot=0)  # port and pid missing

    def test_extra_fields_allowed(self):
        log, stream = make_log()
        log.info("request.admitted", priority="batch", queue_depth=9)
        (record,) = records(stream)
        assert record["queue_depth"] == 9

    def test_level_threshold_filters(self):
        log, stream = make_log(level="warning")
        log.debug("request.admitted", priority="interactive")
        log.info("serve.draining")
        log.warning("request.shed", priority="batch", reason="queue_full")
        log.error("request.failed", status=500, code="internal")
        assert [r["level"] for r in records(stream)] == ["warning", "error"]

    def test_schema_still_enforced_below_threshold(self):
        log, stream = make_log(level="error")
        with pytest.raises(ValueError, match="undeclared event"):
            log.debug("nope.nope")
        assert stream.getvalue() == ""

    def test_enabled_for_matches_emission(self):
        log, _ = make_log(level="info")
        assert not log.enabled_for(DEBUG)
        assert log.enabled_for(INFO)
        assert log.enabled_for(WARNING)
        assert log.enabled_for(ERROR)

    def test_level_accepts_name_or_number(self):
        assert EventLog(io.StringIO(), level="warning").level == WARNING
        assert EventLog(io.StringIO(), level=WARNING).level == WARNING
        with pytest.raises(ValueError, match="unknown log level"):
            EventLog(io.StringIO(), level="loud")

    def test_child_shares_stream_with_new_source(self):
        log, stream = make_log(source="router")
        child = log.child("w0")
        log.info("serve.draining")
        child.info("serve.draining")
        first, second = records(stream)
        assert first["source"] == "router"
        assert second["source"] == "w0"


class TestNullLog:
    def test_disabled_for_everything(self):
        assert not NULL_LOG.enabled_for(ERROR)
        NULL_LOG.error("request.failed", status=500, code="internal")

    def test_still_validates_schema(self):
        with pytest.raises(ValueError, match="undeclared event"):
            NULL_LOG.info("made.up")


class TestSchemaAndGolden:
    def test_demo_covers_every_event(self):
        log, stream = make_log()
        demo_events(log)
        seen = [record["event"] for record in records(stream)]
        assert sorted(seen) == sorted(EVENT_FIELDS)

    def test_every_level_name_is_known(self):
        log, stream = make_log()
        demo_events(log)
        assert {r["level"] for r in records(stream)} <= set(LEVELS)

    def test_golden_bytes(self):
        """``python -m repro.obs.log`` must reproduce the checked-in
        golden byte-for-byte — the CI ``cmp`` check."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.obs.log"],
            capture_output=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        assert result.stdout == GOLDEN.read_bytes()
