"""Tests for the electrical direct-connect interconnect baseline."""

import pytest

from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.topology.electrical import ElectricalInterconnect, TransferClaim
from repro.topology.torus import Link, Torus


@pytest.fixture
def fabric():
    return ElectricalInterconnect(torus=Torus((4, 4, 4)))


class TestBandwidthPartition:
    def test_three_wired_dimensions(self, fabric):
        assert fabric.wired_dimensions == 3

    def test_link_gets_a_third(self, fabric):
        assert fabric.link_bandwidth_bytes() == pytest.approx(CHIP_EGRESS_BYTES / 3)

    def test_degenerate_dimension_excluded(self):
        flat = ElectricalInterconnect(torus=Torus((4, 4, 1)))
        assert flat.wired_dimensions == 2
        assert flat.link_bandwidth_bytes() == pytest.approx(CHIP_EGRESS_BYTES / 2)

    def test_no_links_rejected(self):
        degenerate = ElectricalInterconnect(torus=Torus((1, 1)))
        with pytest.raises(ValueError):
            degenerate.link_bandwidth_bytes()


class TestClaims:
    def test_claim_and_release(self, fabric):
        link = Link((0, 0, 0), (1, 0, 0))
        fabric.claim("job-a", [link])
        assert len(fabric.claims) == 1
        assert fabric.release("job-a") == 1
        assert not fabric.claims

    def test_claim_validates_links(self, fabric):
        with pytest.raises(ValueError):
            fabric.claim("bad", [Link((0, 0, 0), (2, 0, 0))])

    def test_clear(self, fabric):
        fabric.claim("a", [Link((0, 0, 0), (1, 0, 0))])
        fabric.clear()
        assert not fabric.claims


class TestCongestion:
    def test_disjoint_transfers_congestion_free(self, fabric):
        fabric.claim("a", [Link((0, 0, 0), (1, 0, 0))])
        fabric.claim("b", [Link((0, 1, 0), (1, 1, 0))])
        report = fabric.congestion()
        assert report.is_congestion_free
        assert report.max_multiplicity == 1

    def test_shared_link_detected(self, fabric):
        shared = Link((0, 0, 0), (1, 0, 0))
        fabric.claim("a", [shared])
        fabric.claim("b", [shared])
        report = fabric.congestion()
        assert not report.is_congestion_free
        assert report.congested_links[shared] == 2
        assert report.congested_link_count == 1

    def test_hypothetical_extra_claims(self, fabric):
        shared = Link((0, 0, 0), (1, 0, 0))
        fabric.claim("a", [shared])
        extra = TransferClaim(owner="candidate", links=(shared,))
        report = fabric.congestion(extra=[extra])
        assert not report.is_congestion_free
        # The hypothetical claim was not committed.
        assert fabric.congestion().is_congestion_free

    def test_opposite_directions_do_not_collide(self, fabric):
        fabric.claim("a", [Link((0, 0, 0), (1, 0, 0))])
        fabric.claim("b", [Link((1, 0, 0), (0, 0, 0))])
        assert fabric.congestion().is_congestion_free

    def test_fair_share_under_contention(self, fabric):
        shared = Link((0, 0, 0), (1, 0, 0))
        fabric.claim("a", [shared])
        fabric.claim("b", [shared])
        assert fabric.link_share_bytes(shared) == pytest.approx(
            fabric.link_bandwidth_bytes() / 2
        )


class TestForwarding:
    def test_forwarding_chips_are_interior(self, fabric):
        path = [(0, 0, 0), (1, 0, 0), (2, 0, 0)]
        assert fabric.forwarding_chips(path) == [(1, 0, 0)]

    def test_forwarding_cost_scales_with_path(self, fabric):
        path = [(0, 0, 0), (1, 0, 0), (2, 0, 0), (3, 0, 0)]
        assert fabric.forwarding_cost_bytes(path, 100.0) == pytest.approx(200.0)

    def test_direct_path_free(self, fabric):
        assert fabric.forwarding_cost_bytes([(0, 0, 0), (1, 0, 0)], 100.0) == 0.0

    def test_negative_volume_rejected(self, fabric):
        with pytest.raises(ValueError):
            fabric.forwarding_cost_bytes([(0, 0, 0), (1, 0, 0)], -1.0)
