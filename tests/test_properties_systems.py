"""Property-based tests for the systems-level extension modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.jobs import provision_job
from repro.topology.placement import (
    PlacementRequest,
    compactness_first_placement,
    score_placement,
    utilization_aware_placement,
)
from repro.topology.torus import Torus
from repro.topology.tpu import TpuCluster


class TestPlacementProperties:
    @given(
        st.lists(
            st.sampled_from([1, 2, 4, 8, 16, 32]), min_size=1, max_size=5
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_policies_never_overlap_slices(self, sizes):
        requests = [
            PlacementRequest(f"t{i}", chips) for i, chips in enumerate(sizes)
        ]
        for policy in (compactness_first_placement, utilization_aware_placement):
            outcome = policy(Torus((4, 4, 4)), requests)
            seen = set()
            for slc in outcome.allocator.slices:
                for chip in slc.chips():
                    assert chip not in seen
                    seen.add(chip)
            assert set(outcome.placed) | set(outcome.rejected) == {
                r.name for r in requests
            }

    @given(
        st.lists(
            st.sampled_from([2, 4, 8, 16]), min_size=1, max_size=4
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_aware_never_worse_than_compact(self, sizes):
        requests = [
            PlacementRequest(f"t{i}", chips) for i, chips in enumerate(sizes)
        ]
        compact = compactness_first_placement(Torus((4, 4, 4)), requests)
        aware = utilization_aware_placement(Torus((4, 4, 4)), requests)
        if set(compact.placed) == set(aware.placed):
            assert (
                score_placement(aware).weighted_utilization
                >= score_placement(compact).weighted_utilization - 1e-12
            )


class TestJobProvisioningProperties:
    @given(st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 192, 256]))
    @settings(max_examples=20, deadline=None)
    def test_chip_count_preserved(self, chips):
        cluster = TpuCluster(rack_count=4)
        job = provision_job(cluster, "p", chips=chips)
        assert job.slc.chip_count == chips

    @given(st.sampled_from([64, 128, 192, 256]))
    @settings(max_examples=10, deadline=None)
    def test_whole_rack_jobs_fully_utilized(self, chips):
        cluster = TpuCluster(rack_count=4)
        job = provision_job(cluster, "p", chips=chips)
        assert job.electrical_utilization == 1.0

    @given(st.sampled_from([2, 4, 8, 16, 32]))
    @settings(max_examples=10, deadline=None)
    def test_sub_rack_jobs_never_fully_utilized(self, chips):
        cluster = TpuCluster(rack_count=1)
        job = provision_job(cluster, "p", chips=chips)
        assert job.electrical_utilization < 1.0
        assert job.setup_latency_s == 0.0


class TestTopologyEngineeringProperties:
    @given(
        st.integers(2, 16),
        st.integers(1, 8),
        st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_port_limits_always_respected(self, nodes, ports, heavy):
        from repro.core.topology_engineering import (
            engineer_topology,
            skewed_traffic,
        )

        labels = [f"n{i}" for i in range(nodes)]
        heavy = min(heavy, nodes * (nodes - 1))
        traffic = skewed_traffic(
            labels, heavy_pairs=heavy, heavy_bytes=56e9, light_bytes=1e6
        )
        topology = engineer_topology(traffic, ports_per_node=ports)
        for node in labels:
            assert topology.egress_used(node) <= ports
            assert topology.ingress_used(node) <= ports


class TestAvailabilityProperties:
    @given(st.lists(st.floats(0.0, 86400.0 * 10), min_size=0, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_optical_never_worse(self, times):
        from repro.failures.availability import replay_trace
        from repro.failures.inject import FailureEvent
        from repro.topology.tpu import GlobalChipId

        events = [
            FailureEvent(time_s=t, chip=GlobalChipId(i % 4, (0, 0, 0)))
            for i, t in enumerate(times)
        ]
        rack_report, optical_report = replay_trace(
            events, 4096, 86400.0 * 10
        )
        assert (
            optical_report.lost_chip_seconds
            <= rack_report.lost_chip_seconds + 1e-6
        )
        for report in (rack_report, optical_report):
            covered = sum(p.end_s - p.start_s for p in report.timeline)
            assert covered == pytest.approx(report.horizon_s)
