"""Tests for the optical circuit switch model."""

import pytest

from repro.topology.ocs import OpticalCircuitSwitch, PortBusy


class TestConnections:
    def test_connect_and_peer(self):
        ocs = OpticalCircuitSwitch("t")
        ocs.connect("a", "b")
        assert ocs.peer("a") == "b"
        assert ocs.peer("b") == "a"
        assert ocs.is_connected("a", "b")

    def test_circuit_count(self):
        ocs = OpticalCircuitSwitch("t")
        ocs.connect("a", "b")
        ocs.connect("c", "d")
        assert ocs.circuit_count == 2

    def test_busy_port_rejected(self):
        ocs = OpticalCircuitSwitch("t")
        ocs.connect("a", "b")
        with pytest.raises(PortBusy):
            ocs.connect("a", "c")
        with pytest.raises(PortBusy):
            ocs.connect("c", "b")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            OpticalCircuitSwitch("t").connect("a", "a")

    def test_unmapped_peer_is_none(self):
        assert OpticalCircuitSwitch("t").peer("ghost") is None


class TestDisconnect:
    def test_disconnect_clears_both_sides(self):
        ocs = OpticalCircuitSwitch("t")
        ocs.connect("a", "b")
        ocs.disconnect("a")
        assert ocs.peer("a") is None
        assert ocs.peer("b") is None
        assert ocs.circuit_count == 0

    def test_disconnect_unmapped_noop(self):
        OpticalCircuitSwitch("t").disconnect("ghost")


class TestReconfigure:
    def test_reconfigure_repoints(self):
        ocs = OpticalCircuitSwitch("t")
        ocs.connect("a", "b")
        latency = ocs.reconfigure("a", "c")
        assert latency == ocs.reconfigure_latency_s
        assert ocs.is_connected("a", "c")
        assert ocs.peer("b") is None

    def test_reconfigure_fresh_ports(self):
        ocs = OpticalCircuitSwitch("t")
        ocs.reconfigure("x", "y")
        assert ocs.is_connected("x", "y")

    def test_default_latency_is_milliseconds(self):
        assert OpticalCircuitSwitch("t").reconfigure_latency_s >= 1e-3
