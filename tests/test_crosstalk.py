"""Tests for the crosstalk accumulation model."""

import math

import pytest

from repro.phy.crosstalk import CrosstalkModel


class TestAccumulation:
    def test_no_hops_no_crosstalk(self):
        report = CrosstalkModel().accumulate(0, 0)
        assert report.power_penalty_db == 0.0
        assert report.crosstalk_ratio_db == math.inf

    def test_penalty_grows_with_hops(self):
        model = CrosstalkModel()
        few = model.accumulate(2, 2).power_penalty_db
        many = model.accumulate(20, 20).power_penalty_db
        assert many > few

    def test_short_circuit_negligible(self):
        # The Figure 3a circuit: 2 crossings, a few switch hops.
        report = CrosstalkModel().accumulate(3, 2)
        assert report.negligible

    def test_mzi_dominates_crossings(self):
        model = CrosstalkModel()
        switches = model.accumulate(10, 0).power_penalty_db
        crossings = model.accumulate(0, 10).power_penalty_db
        assert switches > crossings

    def test_occupancy_scales_leakage(self):
        quiet = CrosstalkModel(occupancy=0.1).accumulate(10, 10)
        busy = CrosstalkModel(occupancy=1.0).accumulate(10, 10)
        assert quiet.power_penalty_db < busy.power_penalty_db

    def test_zero_occupancy_no_penalty(self):
        report = CrosstalkModel(occupancy=0.0).accumulate(100, 100)
        assert report.power_penalty_db == 0.0

    def test_catastrophic_leak_is_infinite(self):
        terrible = CrosstalkModel(mzi_isolation_db=5.0)
        report = terrible.accumulate(100, 0)
        assert math.isinf(report.power_penalty_db)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            CrosstalkModel().accumulate(-1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CrosstalkModel(mzi_isolation_db=0.0)
        with pytest.raises(ValueError):
            CrosstalkModel(occupancy=1.5)


class TestPenalizedMargin:
    def test_margin_reduced_by_penalty(self):
        model = CrosstalkModel()
        report = model.accumulate(10, 10)
        margin = model.penalized_margin_db(10.0, 10, 10)
        assert margin == pytest.approx(10.0 - report.power_penalty_db)

    def test_catastrophic_margin_is_negative_infinity(self):
        terrible = CrosstalkModel(mzi_isolation_db=3.0)
        assert terrible.penalized_margin_db(100.0, 200, 0) == -math.inf


class TestMaxHops:
    def test_paper_scale_circuits_fit(self):
        # A corner-to-corner wafer circuit uses ~3-13 switch hops; the
        # 35 dB isolation budget must admit far more than that.
        assert CrosstalkModel().max_mzi_hops(1.0) > 100

    def test_tighter_budget_fewer_hops(self):
        model = CrosstalkModel()
        assert model.max_mzi_hops(0.1) < model.max_mzi_hops(1.0)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            CrosstalkModel().max_mzi_hops(0.0)

    def test_boundary_consistency(self):
        model = CrosstalkModel(mzi_isolation_db=20.0)
        hops = model.max_mzi_hops(0.5)
        assert model.accumulate(hops, 0).power_penalty_db <= 0.5
        assert model.accumulate(hops + 1, 0).power_penalty_db > 0.5
