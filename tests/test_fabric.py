"""Tests for the rack-scale LIGHTPATH fabric."""

import pytest

from repro.core.circuits import CircuitError
from repro.core.fabric import LightpathRackFabric
from repro.topology.tpu import TpuRack


@pytest.fixture
def fabric():
    return LightpathRackFabric(TpuRack(0))


class TestStructure:
    def test_one_wafer_per_server(self, fabric):
        assert len(fabric.wafers) == 16

    def test_every_chip_mapped_to_a_tile(self, fabric):
        for chip in fabric.rack.torus.nodes():
            server = fabric.server_of(chip)
            tile = fabric.tile_of(chip)
            wafer = fabric.wafers[server].wafer
            assert wafer.tile(tile).accelerator == chip

    def test_chips_on_same_server_share_wafer(self, fabric):
        server = fabric.rack.servers()[0]
        chips = fabric.rack.server_chips(server)
        assert {fabric.server_of(c) for c in chips} == {server}

    def test_trunks_join_adjacent_servers(self, fabric):
        # Server torus is 2x2x4: dims with extent 2 give 1 cable per pair,
        # extent 4 gives per-hop cables.
        assert len(fabric.trunks()) > 0
        for trunk in fabric.trunks():
            a, b = trunk.ends
            assert a != b

    def test_trunk_lookup_rejects_non_adjacent(self, fabric):
        with pytest.raises(KeyError):
            fabric.trunk((0, 0, 0), (1, 1, 2))


class TestIntraServerCircuits:
    def test_same_server_uses_waveguides_only(self, fabric):
        server = fabric.rack.servers()[0]
        a, b = fabric.rack.server_chips(server)[:2]
        circuit = fabric.establish(a, b)
        assert circuit.fiber_hops == 0
        assert circuit.server_path == (server,)
        assert fabric.fibers_in_use() == 0

    def test_setup_latency_is_reconfiguration(self, fabric):
        server = fabric.rack.servers()[0]
        a, b = fabric.rack.server_chips(server)[:2]
        assert fabric.establish(a, b).setup_latency_s == pytest.approx(3.7e-6)


class TestInterServerCircuits:
    def test_cross_server_uses_fibers(self, fabric):
        circuit = fabric.establish((0, 0, 0), (0, 0, 3))
        assert circuit.fiber_hops >= 1
        assert fabric.fibers_in_use() == circuit.fiber_hops

    def test_far_corner_circuit(self, fabric):
        circuit = fabric.establish((0, 0, 0), (3, 3, 3))
        assert circuit.fiber_hops == len(circuit.server_path) - 1
        assert len(circuit.endpoint_circuits) == 2

    def test_teardown_releases_fibers(self, fabric):
        circuit = fabric.establish((0, 0, 0), (0, 0, 3))
        fabric.teardown(circuit.circuit_id)
        assert fabric.fibers_in_use() == 0
        assert not fabric.circuits

    def test_failed_chip_rejected(self, fabric):
        fabric.rack.fail_chip((0, 0, 0))
        with pytest.raises(CircuitError):
            fabric.establish((0, 0, 0), (1, 1, 1))

    def test_unknown_chip_rejected(self, fabric):
        with pytest.raises(CircuitError):
            fabric.establish((9, 9, 9), (0, 0, 0))

    def test_self_circuit_rejected(self, fabric):
        with pytest.raises(CircuitError):
            fabric.establish((0, 0, 0), (0, 0, 0))


class TestResourceExclusivity:
    def test_circuits_never_share_fibers(self, fabric):
        circuits = [
            fabric.establish((0, 0, 0), (0, 0, 2)),
            fabric.establish((1, 0, 0), (1, 0, 2)),
            fabric.establish((0, 1, 0), (0, 1, 2)),
        ]
        total = sum(c.fiber_hops for c in circuits)
        assert fabric.fibers_in_use() == total
        assert fabric.is_congestion_free()

    def test_trunk_exhaustion_detours_or_fails(self):
        fabric = LightpathRackFabric(TpuRack(0), fibers_per_trunk=1)
        # Saturate circuits between the same server pair until the direct
        # trunk is gone; further circuits must detour (longer path) or fail.
        first = fabric.establish((0, 0, 0), (0, 0, 2))
        second = fabric.establish((1, 1, 0), (1, 1, 2))
        assert second.server_path != first.server_path or (
            second.fiber_indices != first.fiber_indices
        )
