"""Tests for repro.fleet: renewal process, policies, simulator, API."""

import json

import pytest

from repro.api import (
    FleetPlan,
    RunResult,
    ScenarioSpec,
    UnsupportedOutput,
    run,
)
from repro.cli import main
from repro.fleet import (
    BatchedPolicy,
    FleetConfig,
    FleetSimulator,
    ImmediatePolicy,
    LazyThresholdPolicy,
    RenewalFailureProcess,
    make_policy,
    simulate_fleet,
)
from repro.sim.engine import EventEngine, SimulationError

YEAR_S = 365.0 * 24.0 * 3600.0

# Small, failure-dense config: exercises queues and budgets in
# milliseconds of wall clock.
DENSE = FleetConfig(
    racks=2,
    chips_per_rack=8,
    chips_per_server=2,
    horizon_s=30 * 24 * 3600.0,
    mtbf_s=10 * 24 * 3600.0,
    seed=3,
)


class TestRenewalProcess:
    def test_validation(self):
        with pytest.raises(ValueError):
            RenewalFailureProcess(0, mtbf_s=1.0)
        with pytest.raises(ValueError):
            RenewalFailureProcess(4, mtbf_s=0.0)
        with pytest.raises(IndexError):
            RenewalFailureProcess(4, mtbf_s=1.0).next_delay_s(4)

    def test_draws_are_positive(self):
        process = RenewalFailureProcess(8, mtbf_s=1e5, seed=1)
        for chip in range(8):
            assert process.next_delay_s(chip) > 0


class TestPolicies:
    def test_factory(self):
        assert make_policy("immediate").name == "immediate"
        assert make_policy("lazy", lazy_threshold=2).threshold == 2
        assert make_policy("batched", batch_interval_s=5.0).interval_s == 5.0
        with pytest.raises(ValueError):
            make_policy("bogus")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LazyThresholdPolicy(0)
        with pytest.raises(ValueError):
            BatchedPolicy(0.0)

    def test_immediate_dispatches_at_once(self):
        dispatched = []
        policy = ImmediatePolicy()
        policy.start(EventEngine(), dispatched.append)
        policy.on_failure(7)
        assert dispatched == [7]
        assert policy.held == 0

    def test_lazy_holds_until_threshold(self):
        dispatched = []
        policy = LazyThresholdPolicy(3)
        policy.start(EventEngine(), dispatched.append)
        policy.on_failure(1)
        policy.on_failure(2)
        assert dispatched == [] and policy.held == 2
        policy.on_failure(3)
        assert dispatched == [1, 2, 3] and policy.held == 0

    def test_batched_flushes_on_cadence(self):
        engine = EventEngine()
        dispatched = []
        policy = BatchedPolicy(10.0)
        policy.start(engine, dispatched.append)
        engine.schedule_at(1.0, lambda: policy.on_failure(5))
        engine.run(until_s=9.0)
        assert dispatched == [] and policy.held == 1
        engine.run(until_s=11.0)
        assert dispatched == [5] and policy.held == 0


class TestFleetConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(racks=0)
        with pytest.raises(ValueError):
            FleetConfig(chips_per_server=100, chips_per_rack=64)
        with pytest.raises(ValueError):
            FleetConfig(horizon_s=0.0)
        with pytest.raises(ValueError):
            FleetConfig(max_concurrent_migrations=0)
        with pytest.raises(ValueError):
            FleetConfig(spare_inventory=-1)
        with pytest.raises(ValueError):
            FleetConfig(series_points=0)

    def test_chips(self):
        assert FleetConfig().chips == 4096
        assert DENSE.chips == 16


class TestSimulator:
    def test_rejects_unknown_fabric(self):
        with pytest.raises(ValueError):
            FleetSimulator(DENSE, "quantum")

    def test_runs_once(self):
        simulator = FleetSimulator(DENSE, "photonic")
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.run()

    @pytest.mark.parametrize("fabric", ["electrical", "photonic"])
    @pytest.mark.parametrize("policy", ["immediate", "lazy", "batched"])
    def test_invariants_under_every_policy(self, fabric, policy):
        stats = simulate_fleet(DENSE, fabric, policy=policy)
        assert 0.0 <= stats.mean_availability <= 1.0
        assert 0 <= stats.min_available_chips <= DENSE.chips
        assert stats.repairs + stats.unrepaired == stats.failures
        assert stats.lost_chip_seconds >= stats.collateral_chip_seconds >= 0
        assert stats.ttr_p50_s <= stats.ttr_p90_s <= stats.ttr_max_s
        assert len(stats.series) == DENSE.series_points
        for start, end, mean in stats.series:
            assert 0.0 <= mean <= DENSE.chips
            assert end > start

    @pytest.mark.parametrize("fabric", ["electrical", "photonic"])
    def test_deterministic_per_seed(self, fabric):
        assert simulate_fleet(DENSE, fabric) == simulate_fleet(DENSE, fabric)

    def test_different_seeds_diverge(self):
        other = FleetConfig(**{**DENSE.__dict__, "seed": 4})
        assert simulate_fleet(DENSE, "electrical") != simulate_fleet(
            other, "electrical"
        )

    def test_photonic_strictly_dominates_electrical(self):
        config = FleetConfig(seed=7)
        electrical = simulate_fleet(config, "electrical")
        photonic = simulate_fleet(config, "photonic")
        assert photonic.mean_availability > electrical.mean_availability
        assert photonic.lost_chip_seconds < electrical.lost_chip_seconds
        assert photonic.ttr_p50_s < electrical.ttr_p50_s

    def test_migration_budget_serializes_repairs(self):
        # One migration slot: a rack failing while the other rack's
        # migration is active queues behind it, so the worst repair
        # strictly exceeds a single migration window.
        generous = FleetConfig(**{**DENSE.__dict__, "mtbf_s": 86400.0})
        starved = FleetConfig(
            **{**generous.__dict__, "max_concurrent_migrations": 1}
        )
        wide = simulate_fleet(generous, "electrical")
        narrow = simulate_fleet(starved, "electrical")
        assert narrow.ttr_max_s >= wide.ttr_max_s
        assert narrow.ttr_max_s > generous.migration_s

    def test_zero_spares_block_photonic_repair(self):
        config = FleetConfig(**{**DENSE.__dict__, "spare_inventory": 0})
        stats = simulate_fleet(config, "photonic")
        assert stats.failures > 0
        assert stats.repairs == 0
        assert stats.unrepaired == stats.failures
        assert stats.ttr_max_s == 0.0

    def test_spare_exhaustion_queues_until_replenish(self):
        # One spare per rack, fast replenish: bursts wait on inventory,
        # so some repair takes at least a replenish cycle.
        config = FleetConfig(
            **{
                **DENSE.__dict__,
                "mtbf_s": 86400.0,
                "spare_inventory": 1,
                "spare_replenish_s": 3600.0,
            }
        )
        stats = simulate_fleet(config, "photonic")
        assert stats.repairs > 0
        assert stats.ttr_max_s >= 3600.0

    def test_electrical_migration_repairs_whole_rack(self):
        # Lazy dispatch batches same-rack failures into one migration:
        # repairs still equal failures afterwards.
        stats = simulate_fleet(DENSE, "electrical", policy="lazy",
                               lazy_threshold=2)
        assert stats.repairs + stats.unrepaired == stats.failures

    def test_events_processed_is_deterministic(self):
        a = simulate_fleet(DENSE, "electrical")
        b = simulate_fleet(DENSE, "electrical")
        assert a.events_processed == b.events_processed > 0


class TestFleetPlanSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetPlan(days=-1.0)
        with pytest.raises(ValueError):
            FleetPlan(policy="bogus")
        with pytest.raises(ValueError):
            FleetPlan(max_concurrent_migrations=0)
        with pytest.raises(ValueError):
            FleetPlan(mtbf_years=0.0)

    def test_round_trip(self):
        plan = FleetPlan(days=90.0, seed=5, policy="lazy", spare_inventory=2)
        assert FleetPlan.from_dict(plan.to_dict()) == plan

    def test_default_plan_keeps_spec_bytes(self):
        # Pre-fleet specs must serialize to the exact same bytes, so
        # cache keys, goldens and archived results stay valid.
        spec = ScenarioSpec()
        data = spec.to_dict()
        assert "fleet" not in data
        assert ScenarioSpec.from_dict(data) == spec

    def test_configured_plan_round_trips(self):
        spec = ScenarioSpec(
            outputs=("fleet",), fleet=FleetPlan(days=30.0, seed=9)
        )
        data = spec.to_dict()
        assert data["fleet"]["days"] == 30.0
        assert ScenarioSpec.from_dict(data) == spec


class TestFleetOutput:
    @pytest.fixture(scope="class")
    def result(self):
        return run(ScenarioSpec(
            fabric="photonic",
            outputs=("fleet",),
            fleet=FleetPlan(days=30.0, seed=11),
        ))

    def test_photonic_dominates(self, result):
        report = result.fleet
        assert report.chips == 4096
        assert 0.0 <= report.electrical.mean_availability <= 1.0
        assert 0.0 <= report.photonic.mean_availability <= 1.0
        assert (
            report.photonic.mean_availability
            > report.electrical.mean_availability
        )
        assert report.availability_gap > 0

    def test_json_round_trip(self, result):
        blob = result.to_json(indent=2, sort_keys=True)
        restored = RunResult.from_json(blob)
        assert restored == result
        assert restored.to_json(indent=2, sort_keys=True) == blob

    def test_derived_gap_matches_sections(self, result):
        data = result.to_dict()["fleet"]
        assert data["availability_gap"] == pytest.approx(
            data["photonic"]["mean_availability"]
            - data["electrical"]["mean_availability"]
        )

    def test_zero_days_refused(self):
        with pytest.raises(UnsupportedOutput):
            run(ScenarioSpec(fabric="photonic", outputs=("fleet",)))

    def test_switched_fabric_refused(self):
        with pytest.raises(UnsupportedOutput):
            run(ScenarioSpec(
                fabric="switched",
                outputs=("fleet",),
                fleet=FleetPlan(days=30.0),
            ))

    def test_session_caches_fleet_runs(self, result):
        from repro.api import FabricSession

        session = FabricSession()
        spec = ScenarioSpec(
            fabric="photonic",
            outputs=("fleet",),
            fleet=FleetPlan(days=30.0, seed=11),
        )
        first = session.run(spec)
        second = session.run(spec)
        assert first == second
        assert session.runs_executed == 1


class TestFleetCli:
    def test_table_output(self, capsys):
        assert main(["fleet", "--days", "30", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fleet reliability" in out
        assert "electrical" in out and "photonic" in out

    def test_json_matches_golden(self, capsys, tmp_path):
        from pathlib import Path

        golden = Path(__file__).parent / "golden" / "fleet.json"
        assert main(["fleet", "--json", "-"]) == 0
        assert capsys.readouterr().out == golden.read_text()

    def test_json_is_loadable(self, capsys):
        assert main(["fleet", "--days", "7", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        restored = RunResult.from_dict(payload)
        assert restored.fleet.days == 7.0

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--policy", "bogus"])
