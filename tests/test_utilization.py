"""Tests for the Figure 5b/5c utilization analysis."""

import pytest

from repro.analysis.utilization import (
    figure5b_layout,
    rack_utilization,
    slice_utilization,
)
from repro.topology.slices import Slice, SliceAllocator
from repro.topology.torus import Torus


class TestFigure5bLayout:
    def test_four_tenants_fill_the_rack(self):
        allocator = figure5b_layout()
        assert len(allocator.slices) == 4
        assert not allocator.free_chips()

    def test_shapes_match_figure(self):
        allocator = figure5b_layout()
        shapes = {s.name: s.shape for s in allocator.slices}
        assert shapes["Slice-1"] == (4, 2, 1)
        assert shapes["Slice-2"] == (4, 2, 1)
        assert shapes["Slice-3"] == (4, 4, 1)
        assert shapes["Slice-4"] == (4, 4, 2)

    def test_layout_on_custom_allocator(self):
        allocator = SliceAllocator(Torus((4, 4, 4)))
        assert figure5b_layout(allocator) is allocator


class TestSliceUtilization:
    def test_slice1_loses_two_thirds(self):
        allocator = figure5b_layout()
        rows = {u.name: u for u in rack_utilization(allocator)}
        slice1 = rows["Slice-1"]
        assert slice1.electrical_fraction == pytest.approx(1 / 3)
        assert slice1.bandwidth_loss_percent == pytest.approx(100 * 2 / 3)
        assert slice1.optical_fraction == 1.0

    def test_slice3_loses_one_third(self):
        allocator = figure5b_layout()
        rows = {u.name: u for u in rack_utilization(allocator)}
        assert rows["Slice-3"].bandwidth_loss_percent == pytest.approx(100 / 3)

    def test_figure5c_max_loss_is_66_percent(self):
        allocator = figure5b_layout()
        worst = max(u.bandwidth_loss_percent for u in rack_utilization(allocator))
        assert worst == pytest.approx(66.7, abs=0.1)

    def test_optical_gain_factors(self):
        allocator = figure5b_layout()
        rows = {u.name: u for u in rack_utilization(allocator)}
        assert rows["Slice-1"].optical_gain_factor == pytest.approx(3.0)
        assert rows["Slice-4"].optical_gain_factor == pytest.approx(1.5)

    def test_absolute_bandwidths(self):
        allocator = figure5b_layout()
        rows = {u.name: u for u in rack_utilization(allocator)}
        slice1 = rows["Slice-1"]
        assert slice1.optical_bandwidth_bytes == pytest.approx(
            3 * slice1.electrical_bandwidth_bytes
        )

    def test_rows_sorted_by_name(self):
        allocator = figure5b_layout()
        names = [u.name for u in rack_utilization(allocator)]
        assert names == sorted(names)

    def test_isolated_slice_summary(self):
        rack = Torus((4, 4, 4))
        slc = Slice(name="solo", rack=rack, offset=(0, 0, 0), shape=(4, 4, 4))
        row = slice_utilization(slc)
        assert row.electrical_fraction == 1.0
        assert row.bandwidth_loss_percent == 0.0
        assert row.usable_dims_electrical == (0, 1, 2)

    def test_custom_chip_egress(self):
        rack = Torus((4, 4, 4))
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 2, 1))
        row = slice_utilization(slc, chip_egress=300.0)
        assert row.electrical_bandwidth_bytes == pytest.approx(100.0)
        assert row.optical_bandwidth_bytes == pytest.approx(300.0)
