"""Tests for the semantic collective validators."""

import pytest

from repro.collectives.ring import snake_order
from repro.collectives.validation import (
    ReduceScatterState,
    simulate_bucket_reduce_scatter,
    simulate_ring_all_gather,
    simulate_ring_reduce_scatter,
    verify_all_gather,
    verify_reduce_scatter,
)
from repro.topology.slices import Slice
from repro.topology.torus import Torus


@pytest.fixture
def rack():
    return Torus((4, 4, 4))


def chips(n):
    return [(i,) for i in range(n)]


class TestRingReduceScatter:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8, 16])
    def test_correct_for_all_sizes(self, p):
        state = simulate_ring_reduce_scatter(chips(p))
        assert verify_reduce_scatter(state)

    def test_snake_ring_over_slice_is_correct(self, rack):
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 2, 1))
        state = simulate_ring_reduce_scatter(snake_order(slc))
        assert verify_reduce_scatter(state)

    def test_duplicate_ring_rejected(self):
        with pytest.raises(ValueError):
            simulate_ring_reduce_scatter([(0,), (0,)])

    def test_incomplete_reduction_detected(self):
        # Drop one step's effect by hand: verification must fail.
        state = ReduceScatterState.initial(chips(4))
        for chip in state.members:
            state.restrict(chip, {chip})
        assert not verify_reduce_scatter(state)

    def test_wrong_ownership_detected(self):
        state = simulate_ring_reduce_scatter(chips(4))
        # Corrupt: give chip 0 an extra shard.
        state.holdings[(0,)][(1,)] = frozenset({(0,)})
        assert not verify_reduce_scatter(state)


class TestBucketReduceScatter:
    @pytest.mark.parametrize(
        "shape", [(4, 2, 1), (4, 4, 1), (4, 4, 4), (2, 2, 2), (4, 4, 2)]
    )
    def test_correct_over_slice_shapes(self, rack, shape):
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=shape)
        state = simulate_bucket_reduce_scatter(slc)
        assert verify_reduce_scatter(state)

    def test_correct_for_any_dim_order(self, rack):
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 4, 2))
        for order in ([0, 1, 2], [2, 1, 0], [1, 0, 2]):
            state = simulate_bucket_reduce_scatter(slc, dims=order)
            assert verify_reduce_scatter(state)

    def test_offset_slice_correct(self, rack):
        slc = Slice(name="s", rack=rack, offset=(1, 2, 3), shape=(2, 2, 1))
        state = simulate_bucket_reduce_scatter(slc)
        assert verify_reduce_scatter(state)

    def test_no_dims_rejected(self, rack):
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(1, 1, 1))
        with pytest.raises(ValueError):
            simulate_bucket_reduce_scatter(slc)


class TestRingAllGather:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8, 16])
    def test_correct_for_all_sizes(self, p):
        held = simulate_ring_all_gather(chips(p))
        assert verify_all_gather(held)

    def test_snake_ring_all_gather(self, rack):
        slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 4, 1))
        held = simulate_ring_all_gather(snake_order(slc))
        assert verify_all_gather(held)

    def test_missing_shard_detected(self):
        held = simulate_ring_all_gather(chips(4))
        held[(0,)].discard((2,))
        assert not verify_all_gather(held)
