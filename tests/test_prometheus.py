"""Tests for the Prometheus text exposition (``repro.obs.prometheus``)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    CONTENT_TYPE,
    parse_exposition,
    render_exposition,
    render_snapshot,
)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.requests_completed").inc(3)
    registry.gauge("serve.active_requests").set(2)
    latency = registry.histogram("serve.request_seconds")
    for value in (0.0005, 0.003, 0.03, 0.4, 7.0):
        latency.observe(value)
    return registry


class TestRenderExposition:
    def test_content_type_pin(self):
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_counter_gauge_histogram_families(self):
        text = render_exposition(populated_registry())
        families = parse_exposition(text)
        assert families["repro_serve_requests_completed"]["type"] == "counter"
        assert families["repro_serve_active_requests"]["type"] == "gauge"
        assert families["repro_serve_request_seconds"]["type"] == "histogram"

    def test_histogram_buckets_cumulative_with_inf(self):
        text = render_exposition(populated_registry())
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_serve_request_seconds_bucket")
        ]
        counts = [float(line.split()[-1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert bucket_lines[-1].endswith(" 5")
        assert 'le="+Inf"' in bucket_lines[-1]
        assert "repro_serve_request_seconds_sum" in text
        assert "repro_serve_request_seconds_count 5" in text

    def test_ends_with_newline_and_is_deterministic(self):
        registry = populated_registry()
        first = render_exposition(registry)
        assert first.endswith("\n")
        assert first == render_exposition(registry)

    def test_labels_attached_to_every_sample(self):
        text = render_exposition(populated_registry(),
                                 labels={"worker": "w0"})
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert 'worker="w0"' in line
        parse_exposition(text)

    def test_extra_lines_appended(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests_completed").inc()
        extra = ['repro_custom_total{worker="w1"} 4']
        text = render_exposition(registry, extra_lines=extra)
        assert text.splitlines()[-1] == extra[0]
        parse_exposition(text)

    def test_dotted_names_become_underscores(self):
        registry = MetricsRegistry()
        registry.counter("serve.router_failovers").inc()
        text = render_exposition(registry)
        assert "repro_serve_router_failovers 1" in text


class TestRenderSnapshot:
    def test_histogram_snapshot_renders_summary_stats(self):
        lines = render_snapshot(
            populated_registry().snapshot(),
            labels={"worker": "w3"},
            declare_types=False,
        )
        joined = "\n".join(lines)
        assert not any(line.startswith("#") for line in lines)
        for stat in ("_sum", "_count", "_min", "_max", "_p50", "_p95",
                     "_p99"):
            assert f"repro_serve_request_seconds{stat}" in joined
        assert all('worker="w3"' in line for line in lines)

    def test_counter_and_gauge_snapshots(self):
        lines = render_snapshot(populated_registry().snapshot())
        assert "# TYPE repro_serve_requests_completed counter" in lines
        assert "repro_serve_requests_completed 3" in lines
        assert "repro_serve_active_requests 2" in lines


class TestParseExposition:
    def test_rejects_missing_trailing_newline(self):
        with pytest.raises(ValueError, match="newline"):
            parse_exposition("repro_x 1")

    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("this is ! not a sample\n")

    def test_rejects_unparsable_value(self):
        with pytest.raises(ValueError, match="unparsable value"):
            parse_exposition("repro_x elephants\n")

    def test_rejects_duplicate_type(self):
        text = "# TYPE repro_x counter\n# TYPE repro_x counter\nrepro_x 1\n"
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_exposition(text)

    def test_rejects_noncumulative_histogram(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_exposition(text)

    def test_rejects_histogram_without_inf_bucket(self):
        text = "# TYPE repro_h histogram\n" 'repro_h_bucket{le="1"} 5\n'
        with pytest.raises(ValueError, match=r"no \+Inf bucket"):
            parse_exposition(text)

    def test_rejects_count_disagreement(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 7\n"
        )
        with pytest.raises(ValueError, match="!= _count"):
            parse_exposition(text)

    def test_folds_histogram_series_into_family(self):
        families = parse_exposition(render_exposition(populated_registry()))
        entry = families["repro_serve_request_seconds"]
        names = {name for name, _, _ in entry["samples"]}
        assert "repro_serve_request_seconds_bucket" in names
        assert "repro_serve_request_seconds_sum" in names
        assert "repro_serve_request_seconds_count" in names
