"""Property-based tests for the extension subsystems."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.alltoall import (
    alltoall_optical_cost,
    alltoall_optical_schedule,
    alltoall_ring_cost,
)
from repro.collectives.validation import (
    simulate_bucket_reduce_scatter,
    simulate_ring_all_gather,
    simulate_ring_reduce_scatter,
    verify_all_gather,
    verify_reduce_scatter,
)
from repro.core.transport import (
    CircuitTransport,
    GreedyLongestQueue,
    Message,
    ThresholdBatching,
)
from repro.phy.crosstalk import CrosstalkModel
from repro.topology.slices import Slice
from repro.topology.torus import Torus


class TestCollectiveSemantics:
    @given(st.integers(1, 24))
    @settings(max_examples=24, deadline=None)
    def test_ring_reduce_scatter_always_correct(self, p):
        ring = [(i,) for i in range(p)]
        assert verify_reduce_scatter(simulate_ring_reduce_scatter(ring))

    @given(st.integers(1, 24))
    @settings(max_examples=24, deadline=None)
    def test_ring_all_gather_always_correct(self, p):
        ring = [(i,) for i in range(p)]
        assert verify_all_gather(simulate_ring_all_gather(ring))

    @given(
        st.tuples(
            st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)
        ).filter(lambda s: max(s) > 1)
    )
    @settings(max_examples=40, deadline=None)
    def test_bucket_reduce_scatter_always_correct(self, shape):
        rack = Torus((4, 4, 4))
        slc = Slice(name="p", rack=rack, offset=(0, 0, 0), shape=shape)
        assert verify_reduce_scatter(simulate_bucket_reduce_scatter(slc))


class TestAllToAllProperties:
    @given(st.integers(2, 32))
    @settings(max_examples=30, deadline=None)
    def test_optical_rounds_cover_all_pairs_exactly_once(self, p):
        chips = [(0, i) for i in range(p)]
        schedule = alltoall_optical_schedule(chips, float(p * p))
        pairs = [
            (t.src, t.dst) for phase in schedule.phases for t in phase.transfers
        ]
        assert len(pairs) == p * (p - 1)
        assert len(set(pairs)) == p * (p - 1)

    @given(st.integers(2, 64))
    @settings(max_examples=30, deadline=None)
    def test_ring_penalty_is_p_over_two(self, p):
        ratio = alltoall_ring_cost(p).beta_factor / alltoall_optical_cost(p).beta_factor
        assert math.isclose(ratio, p / 2)

    @given(st.integers(2, 16))
    @settings(max_examples=20, deadline=None)
    def test_optical_rounds_congestion_free(self, p):
        chips = [(0, i) for i in range(p)]
        schedule = alltoall_optical_schedule(chips, 100.0)
        assert schedule.is_congestion_free


class TestTransportProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 1e-3),
                st.integers(0, 3),
                st.floats(1.0, 1e6),
            ),
            min_size=1,
            max_size=30,
        ),
        st.sampled_from(["greedy", "batch"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_monotone_time(self, specs, policy_name):
        messages = [
            Message(arrival_s=t, dst=d, n_bytes=b) for t, d, b in specs
        ]
        policy = (
            GreedyLongestQueue() if policy_name == "greedy" else ThresholdBatching()
        )
        stats = CircuitTransport(policy, rate_bytes=1e6, reconfig_s=1e-5).run(
            messages
        )
        # Every message delivered exactly once.
        assert len(stats.delivered) == len(messages)
        # No delivery starts before its arrival; finishes are ordered.
        for record in stats.delivered:
            assert record.start_s >= record.message.arrival_s - 1e-12
            assert record.finish_s > record.start_s
        finishes = [r.finish_s for r in stats.delivered]
        assert finishes == sorted(finishes)
        # Busy time equals total bytes over rate.
        total_bytes = sum(m.n_bytes for m in messages)
        assert stats.busy_s == pytest.approx(total_bytes / 1e6)


class TestCrosstalkProperties:
    @given(st.integers(0, 60), st.integers(0, 60))
    @settings(max_examples=60, deadline=None)
    def test_penalty_monotone_in_hops(self, mzi, crossings):
        model = CrosstalkModel()
        base = model.accumulate(mzi, crossings).power_penalty_db
        more = model.accumulate(mzi + 1, crossings).power_penalty_db
        assert more >= base

    @given(st.floats(10.0, 60.0))
    @settings(max_examples=40, deadline=None)
    def test_better_isolation_lower_penalty(self, isolation):
        worse = CrosstalkModel(mzi_isolation_db=isolation)
        better = CrosstalkModel(mzi_isolation_db=isolation + 5.0)
        assert (
            better.accumulate(20, 0).power_penalty_db
            <= worse.accumulate(20, 0).power_penalty_db
        )


class TestSpectrumProperties:
    @given(st.integers(1, 12), st.integers(0, 40))
    @settings(max_examples=30, deadline=None)
    def test_accepted_never_exceeds_offered(self, channels, offered):
        from repro.core.spectrum import AssignmentPolicy, BlockingExperiment

        experiment = BlockingExperiment(grid=(2, 4), channels=channels, seed=7)
        point = experiment.run(offered, AssignmentPolicy.FIRST_FIT)
        assert 0 <= point.accepted <= point.offered
        assert 0.0 <= point.blocking_probability <= 1.0
