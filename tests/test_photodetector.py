"""Tests for the photodetector / receiver noise model."""

import pytest

from repro.phy.mrr import MicroRingModulator
from repro.phy.photodetector import Photodetector

CARRIER = 193.1e12


def make_signal(rate_bps=100e9):
    mrr = MicroRingModulator(resonance_hz=CARRIER)
    return mrr.modulate(CARRIER, launch_power_dbm=10.0, rate_bps=rate_bps)


class TestDetection:
    def test_strong_signal_meets_target(self):
        detection = Photodetector().detect(make_signal(), received_power_dbm=0.0)
        assert detection.meets_target
        assert detection.ber < 1e-12

    def test_weak_signal_fails_target(self):
        detection = Photodetector().detect(make_signal(), received_power_dbm=-35.0)
        assert not detection.meets_target

    def test_ber_monotone_in_power(self):
        pd = Photodetector()
        signal = make_signal()
        bers = [pd.detect(signal, p).ber for p in (-30.0, -20.0, -10.0, 0.0)]
        assert bers == sorted(bers, reverse=True)

    def test_q_factor_positive(self):
        detection = Photodetector().detect(make_signal(), -15.0)
        assert detection.q_factor > 0

    def test_photocurrent_scales_with_power(self):
        pd = Photodetector()
        signal = make_signal()
        weak = pd.detect(signal, -20.0).photocurrent_a
        strong = pd.detect(signal, -10.0).photocurrent_a
        assert strong == pytest.approx(weak * 10.0, rel=1e-6)

    def test_higher_rate_needs_more_power(self):
        pd = Photodetector()
        slow = pd.detect(make_signal(rate_bps=25e9), -20.0).ber
        fast = pd.detect(make_signal(rate_bps=200e9), -20.0).ber
        assert fast > slow


class TestSensitivity:
    def test_model_sensitivity_is_plausible(self):
        pd = Photodetector()
        sens = pd.sensitivity_dbm(make_signal(rate_bps=224e9))
        assert -30.0 < sens < 0.0

    def test_sensitivity_bisection_consistent(self):
        pd = Photodetector()
        signal = make_signal()
        sens = pd.sensitivity_dbm(signal, target_ber=1e-12)
        assert pd.detect(signal, sens).ber <= 1e-12
        assert pd.detect(signal, sens - 0.5).ber > 1e-12

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            Photodetector().sensitivity_dbm(make_signal(), target_ber=0.0)

    def test_datasheet_constant_exposed(self):
        assert Photodetector.datasheet_sensitivity_dbm() == pytest.approx(-11.0)


class TestValidation:
    def test_nonpositive_responsivity_rejected(self):
        with pytest.raises(ValueError):
            Photodetector(responsivity_a_per_w=0.0)

    def test_nonpositive_load_rejected(self):
        with pytest.raises(ValueError):
            Photodetector(load_ohm=0.0)
