"""Unit tests for the observability layer: tracer and metrics registry."""

import json

import pytest

from repro.analysis.trace_summary import (
    render_trace_summary,
    summarize_trace,
)
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceEvent,
    Tracer,
)


class TestTraceEvent:
    def test_complete_event_round_trips(self):
        event = TraceEvent(
            name="flow 3", cat="flow", ph="X", ts_us=1.5, dur_us=2.0,
            tid=1, args=(("links", 4),),
        )
        restored = TraceEvent.from_dict(event.to_dict())
        assert restored == event

    def test_instant_carries_thread_scope(self):
        event = TraceEvent(name="x", cat="c", ph="i", ts_us=0.0)
        assert event.to_dict()["s"] == "t"

    def test_end_us(self):
        span = TraceEvent(name="x", cat="c", ph="X", ts_us=2.0, dur_us=3.0)
        instant = TraceEvent(name="x", cat="c", ph="i", ts_us=2.0)
        assert span.end_us == 5.0
        assert instant.end_us == 2.0


class TestTracer:
    def test_complete_converts_seconds_to_microseconds(self):
        tracer = Tracer()
        tracer.complete("reconfig", cat="reconfig", start_s=1e-6, end_s=4.7e-6)
        (span,) = tracer.spans()
        assert span.ts_us == pytest.approx(1.0)
        assert span.dur_us == pytest.approx(3.7)

    def test_instant_and_counter(self):
        tracer = Tracer()
        tracer.instant("rebalance", cat="network", ts_s=2e-6)
        tracer.counter("active", cat="network", ts_s=2e-6, value=3)
        assert len(tracer.instants()) == 1
        assert len(tracer.events) == 2

    def test_category_filters(self):
        tracer = Tracer()
        tracer.complete("a", cat="flow", start_s=0.0, end_s=1e-6)
        tracer.complete("b", cat="phase", start_s=0.0, end_s=1e-6)
        assert [s.cat for s in tracer.spans("flow")] == ["flow"]
        assert len(tracer.spans()) == 2

    def test_chrome_export_shape(self):
        tracer = Tracer()
        tracer.thread_name(0, "network")
        tracer.complete("f", cat="flow", start_s=1e-6, end_s=2e-6)
        tracer.instant("i", cat="network", ts_s=0.0)
        chrome = tracer.to_chrome()
        assert chrome["displayTimeUnit"] == "ns"
        events = chrome["traceEvents"]
        # Metadata first, then by timestamp.
        assert events[0]["ph"] == "M"
        assert [e["ph"] for e in events[1:]] == ["i", "X"]

    def test_to_json_is_deterministic(self):
        def build():
            tracer = Tracer()
            tracer.thread_name(1, "Slice-1")
            tracer.complete(
                "p", cat="phase", start_s=0.0, end_s=5e-6, tid=1,
                args={"transfers": 2},
            )
            return tracer.to_json()

        assert build() == build()
        json.loads(build())  # valid JSON

    def test_write(self, tmp_path):
        tracer = Tracer()
        tracer.complete("f", cat="flow", start_s=0.0, end_s=1e-6)
        path = tmp_path / "out.trace.json"
        tracer.write(path)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 1

    def test_args_are_sorted_and_hashable(self):
        tracer = Tracer()
        tracer.instant("x", cat="c", ts_s=0.0, args={"b": 2, "a": 1})
        (event,) = tracer.events
        assert event.args == (("a", 1), ("b", 2))
        hash(event)  # frozen dataclass stays hashable


class TestNullTracer:
    def test_disabled_and_records_nothing(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.complete("x", cat="c", start_s=0.0, end_s=1.0)
        NULL_TRACER.instant("x", cat="c", ts_s=0.0)
        NULL_TRACER.counter("x", cat="c", ts_s=0.0, value=1)
        NULL_TRACER.thread_name(0, "net")
        assert NULL_TRACER.events == ()


class TestMetrics:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(4.2)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_histogram(self):
        hist = Histogram()
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["mean"] == pytest.approx(2.0)
        assert (snap["min"], snap["max"]) == (1.0, 3.0)

    def test_histogram_snapshot_percentiles_nearest_rank(self):
        hist = Histogram()
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        snap = hist.snapshot()
        # Nearest-rank over n=100: rank = ceil(f * 100).
        assert snap["p50"] == 50.0
        assert snap["p95"] == 95.0
        assert snap["p99"] == 99.0
        assert hist.percentile(0.50) == 50.0

    def test_empty_histogram_percentiles_are_zero(self):
        snap = Histogram().snapshot()
        assert (snap["p50"], snap["p95"], snap["p99"]) == (0.0, 0.0, 0.0)

    def test_histogram_cumulative_buckets(self):
        hist = Histogram(bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            hist.observe(v)
        assert hist.cumulative_buckets() == (
            (1.0, 1), (2.0, 2), (float("inf"), 3)
        )

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))


class TestMetricsRegistry:
    def test_create_on_demand_and_reuse(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counter("a").value == 2.0
        assert len(registry) == 1
        assert "a" in registry

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("zeta").set(1.0)
        registry.counter("alpha").inc()
        registry.histogram("mid").observe(2.0)
        snap = registry.snapshot()
        assert list(snap) == ["alpha", "mid", "zeta"]
        assert snap["alpha"]["kind"] == "counter"
        assert snap["mid"]["kind"] == "histogram"


class TestMetricsRegistryConcurrency:
    """The registry and its metrics are shared across the server's event
    loop and executor threads — increments must not be lost."""

    THREADS = 8
    ITERATIONS = 500

    def hammer(self, work):
        import threading

        barrier = threading.Barrier(self.THREADS)

        def loop():
            barrier.wait()
            for _ in range(self.ITERATIONS):
                work()

        threads = [
            threading.Thread(target=loop) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_increments_not_lost(self):
        registry = MetricsRegistry()
        self.hammer(lambda: registry.counter("hits").inc())
        assert registry.counter("hits").value == self.THREADS * self.ITERATIONS

    def test_histogram_observations_not_lost(self):
        registry = MetricsRegistry()
        self.hammer(lambda: registry.histogram("lat").observe(0.01))
        hist = registry.histogram("lat")
        expected = self.THREADS * self.ITERATIONS
        assert hist.count == expected
        assert hist.total == pytest.approx(expected * 0.01)
        assert hist.cumulative_buckets()[-1][1] == expected

    def test_concurrent_get_or_create_single_instance(self):
        registry = MetricsRegistry()
        self.hammer(lambda: registry.counter("same").inc())
        assert len(registry) == 1


class TestTraceSummary:
    def build(self):
        tracer = Tracer()
        tracer.thread_name(0, "network")
        tracer.complete("f", cat="flow", start_s=0.0, end_s=2e-6)
        tracer.complete("g", cat="flow", start_s=1e-6, end_s=4e-6)
        tracer.instant("r", cat="network", ts_s=1e-6)
        return tracer

    def test_per_category_rollup(self):
        flows, network = summarize_trace(self.build())
        assert (flows.category, flows.spans, flows.instants) == ("flow", 2, 0)
        assert flows.total_dur_us == pytest.approx(5.0)
        assert flows.last_ts_us == pytest.approx(4.0)
        assert (network.category, network.instants) == ("network", 1)

    def test_metadata_excluded(self):
        categories = [s.category for s in summarize_trace(self.build())]
        assert "__metadata" not in categories

    def test_render(self):
        text = render_trace_summary(self.build())
        assert "3 events, 2 categories" in text
        assert "flow" in text

    def test_empty(self):
        assert render_trace_summary(Tracer()) == "trace: no events"
