"""Tests for waveguide/fiber segments and path loss accumulation."""

import pytest

from repro.phy.waveguide import (
    MediumKind,
    PathLoss,
    Segment,
    fiber,
    paper_waveguide_claim_holds,
    tile_waveguide_capacity,
    waveguide,
)


class TestSegments:
    def test_waveguide_constructor(self):
        seg = waveguide(0.05, crossings=3)
        assert seg.kind is MediumKind.WAVEGUIDE
        assert seg.crossings == 3
        assert seg.couplers == 0

    def test_fiber_constructor_has_two_couplers(self):
        seg = fiber(2.0)
        assert seg.kind is MediumKind.FIBER
        assert seg.couplers == 2

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Segment(MediumKind.WAVEGUIDE, -1.0)

    def test_negative_crossings_rejected(self):
        with pytest.raises(ValueError):
            Segment(MediumKind.WAVEGUIDE, 1.0, crossings=-1)

    def test_waveguide_propagation_loss(self):
        seg = waveguide(0.10)
        assert seg.propagation_loss_db == pytest.approx(1.0)  # 10 dB/m

    def test_fiber_propagation_loss_negligible(self):
        seg = fiber(10.0)
        assert seg.propagation_loss_db == pytest.approx(0.002)

    def test_segment_loss_includes_crossings(self):
        seg = waveguide(0.0, crossings=4)
        assert seg.loss_db(crossing_loss_db=0.25) == pytest.approx(1.0)

    def test_fiber_loss_includes_couplers(self):
        seg = fiber(0.0)
        assert seg.loss_db(crossing_loss_db=0.25) == pytest.approx(2.0)


class TestPathLoss:
    def test_total_accumulates_all_terms(self):
        path = PathLoss(
            segments=[waveguide(0.10, crossings=2), fiber(1.0)],
            mzi_hops=3,
            crossing_loss_db=0.25,
        )
        expected = 1.0 + 0.5 + 0.0002 + 2.0 + 1.5
        assert path.total_db(mzi_insertion_loss_db=0.5) == pytest.approx(expected)

    def test_crossings_aggregate_over_segments(self):
        path = PathLoss(
            segments=[waveguide(0.0, crossings=2), waveguide(0.0, crossings=5)]
        )
        assert path.crossings == 7

    def test_negative_mzi_hops_rejected(self):
        with pytest.raises(ValueError):
            PathLoss(segments=[], mzi_hops=-1)

    def test_empty_path_is_lossless(self):
        assert PathLoss(segments=[]).total_db() == 0.0


class TestWaveguideDensityClaim:
    def test_fifty_mm_tile_fits_over_ten_thousand(self):
        assert tile_waveguide_capacity(0.050) > 10_000

    def test_capacity_scales_with_edge(self):
        assert tile_waveguide_capacity(0.006) == 2000

    def test_zero_edge_rejected(self):
        with pytest.raises(ValueError):
            tile_waveguide_capacity(0.0)

    def test_paper_claim_holds_for_prototype_geometry(self):
        assert paper_waveguide_claim_holds()

    def test_paper_claim_fails_for_tiny_tile(self):
        assert not paper_waveguide_claim_holds(tile_edge_m=0.001)
