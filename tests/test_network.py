"""Tests for the fluid flow network."""

import pytest

from repro.sim.engine import EventEngine, SimulationError
from repro.sim.flows import Flow
from repro.sim.network import FlowNetwork


def make(caps=None):
    engine = EventEngine()
    return engine, FlowNetwork(engine, caps or {"l1": 10.0, "l2": 10.0})


class TestSingleFlow:
    def test_completion_time(self):
        engine, network = make()
        network.inject(Flow("a", ("l1",), remaining_bytes=100.0))
        finish = network.run_until_idle()
        assert finish == pytest.approx(10.0)

    def test_record_duration(self):
        engine, network = make()
        record = network.inject(Flow("a", ("l1",), 50.0))
        network.run_until_idle()
        assert record.duration_s == pytest.approx(5.0)

    def test_duration_before_finish_raises(self):
        engine, network = make()
        record = network.inject(Flow("a", ("l1",), 50.0))
        with pytest.raises(SimulationError):
            _ = record.duration_s


class TestSharing:
    def test_two_flows_share_then_speed_up(self):
        engine, network = make()
        network.inject(Flow("a", ("l1",), 100.0))
        network.inject(Flow("b", ("l1",), 50.0))
        network.run_until_idle()
        records = {r.flow.flow_id: r for r in network.records}
        # b finishes at t=10 (5 B/s each); a then gets 10 B/s for its
        # remaining 50 bytes -> t=15.
        assert records["b"].finish_s == pytest.approx(10.0)
        assert records["a"].finish_s == pytest.approx(15.0)

    def test_late_arrival_slows_existing_flow(self):
        engine, network = make()
        network.inject(Flow("a", ("l1",), 100.0))
        engine.schedule_at(
            5.0, lambda: network.inject(Flow("b", ("l1",), 25.0))
        )
        network.run_until_idle()
        records = {r.flow.flow_id: r for r in network.records}
        # a does 50 bytes alone by t=5, then shares: b's 25 bytes at 5 B/s
        # end at t=10; a's remaining 25 run at 5 B/s until t=10 then full
        # rate: finishes at 12.5.
        assert records["b"].finish_s == pytest.approx(10.0)
        assert records["a"].finish_s == pytest.approx(12.5)

    def test_disjoint_flows_independent(self):
        engine, network = make()
        network.inject(Flow("a", ("l1",), 100.0))
        network.inject(Flow("b", ("l2",), 40.0))
        network.run_until_idle()
        records = {r.flow.flow_id: r for r in network.records}
        assert records["a"].finish_s == pytest.approx(10.0)
        assert records["b"].finish_s == pytest.approx(4.0)


class TestCallbacks:
    def test_on_complete_fires_once_at_finish(self):
        # Regression: completion callbacks are deferred to zero-delay
        # events, and run_until_idle used to exit as soon as the last
        # flow left _active — dropping the queued callbacks. No trailing
        # engine.run() is allowed here; run_until_idle alone must deliver.
        engine, network = make()
        calls = []
        network.inject(
            Flow("a", ("l1",), 100.0),
            on_complete=lambda record: calls.append(engine.now_s),
        )
        network.run_until_idle()
        assert calls == [pytest.approx(10.0)]

    def test_run_until_idle_runs_callback_injected_flows(self):
        engine, network = make()
        finishes = []

        def chain(record):
            finishes.append(engine.now_s)
            if len(finishes) < 3:
                network.inject(
                    Flow(f"f{len(finishes)}", ("l1",), 10.0), on_complete=chain
                )

        network.inject(Flow("f0", ("l1",), 10.0), on_complete=chain)
        network.run_until_idle()
        assert finishes == [
            pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)
        ]

    def test_run_until_idle_leaves_future_events_alone(self):
        # Draining covers only events already due (the deferred
        # callbacks); an unrelated event the caller scheduled for later
        # must still be pending afterwards.
        engine, network = make()
        later = []
        network.inject(Flow("a", ("l1",), 100.0))
        engine.schedule_after(99.0, lambda: later.append(engine.now_s))
        finish = network.run_until_idle()
        assert finish == pytest.approx(10.0)
        assert later == []
        engine.run()
        assert later == [pytest.approx(99.0)]

    def test_callback_can_inject_next_flow(self):
        engine, network = make()
        finishes = []

        def chain(record):
            finishes.append(engine.now_s)
            if len(finishes) < 3:
                network.inject(
                    Flow(f"f{len(finishes)}", ("l1",), 10.0), on_complete=chain
                )

        network.inject(Flow("f0", ("l1",), 10.0), on_complete=chain)
        engine.run()
        assert finishes == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


class TestValidation:
    def test_duplicate_id_rejected(self):
        engine, network = make()
        network.inject(Flow("a", ("l1",), 1.0))
        with pytest.raises(SimulationError):
            network.inject(Flow("a", ("l1",), 1.0))

    def test_zero_byte_flow_completes_immediately(self):
        engine, network = make()
        network.inject(Flow("a", ("l1",), 0.0))
        network.run_until_idle()
        assert network.records[0].finish_s == pytest.approx(0.0)

    def test_active_count(self):
        engine, network = make()
        network.inject(Flow("a", ("l1",), 100.0))
        assert network.active_flow_count() == 1
        network.run_until_idle()
        assert network.active_flow_count() == 0

    def test_zeroed_demand_cap_diagnosed_accurately(self):
        # Regression: a demand cap zeroed after construction used to
        # freeze the flow at rate 0 and raise "starved (zero rate);
        # check link capacities" — blaming the (perfectly fine) links.
        # The rate model now rejects the cap itself, by name.
        engine, network = make()
        record = network.inject(Flow("a", ("l1",), 100.0, demand_bytes_per_s=5.0))
        record.flow.demand_bytes_per_s = 0.0
        with pytest.raises(ValueError, match="not at fault"):
            network.inject(Flow("b", ("l1",), 50.0))
