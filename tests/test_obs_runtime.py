"""Tests for wall-clock request tracing (``repro.obs.runtime``).

The tracer's clock is injectable, so everything here is deterministic:
a scripted clock drives spans to exact microsecond timestamps and the
exported Chrome JSON is asserted byte-for-byte stable across runs.
"""

import json

import pytest

from repro.obs.runtime import (
    NULL_RUNTIME_TRACER,
    RuntimeTracer,
    merge_traces,
    new_trace_id,
    valid_trace_id,
    write_merged,
)


class FakeClock:
    """A scripted clock: each call advances by ``step`` seconds."""

    def __init__(self, start=100.0, step=0.25):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_tracer(name="router", pid=4242, **clock_kwargs):
    return RuntimeTracer(name, clock=FakeClock(**clock_kwargs), pid=pid)


class TestTraceIds:
    def test_minted_ids_are_valid_and_distinct(self):
        first, second = new_trace_id(), new_trace_id()
        assert valid_trace_id(first)
        assert valid_trace_id(second)
        assert first != second
        assert len(first) == 32

    @pytest.mark.parametrize(
        "value", ["abc", "Trace-1", "a.b_c-d", "x" * 64]
    )
    def test_accepts_header_safe_ids(self, value):
        assert valid_trace_id(value)

    @pytest.mark.parametrize(
        "value",
        [None, "", "x" * 65, "has space", "semi;colon", "new\nline",
         "quote\"", "ünïcode"],
    )
    def test_rejects_hostile_ids(self, value):
        assert not valid_trace_id(value)


class TestRuntimeTracer:
    def test_seeds_process_name_metadata(self):
        tracer = make_tracer(name="w3", pid=77)
        (meta,) = tracer.events
        assert meta.ph == "M"
        assert meta.name == "process_name"
        assert meta.pid == 77
        assert dict(meta.args) == {"name": "w3"}

    def test_complete_records_wall_clock_span(self):
        tracer = make_tracer()
        tracer.complete(
            "router.proxy", "router", 100.0, 100.5,
            trace_id="t-1", args={"worker": "w0"},
        )
        (span,) = tracer.spans()
        assert span.ts_us == pytest.approx(100.0 * 1e6)
        assert span.dur_us == pytest.approx(0.5 * 1e6)
        assert span.pid == 4242
        assert dict(span.args) == {"worker": "w0", "trace_id": "t-1"}

    def test_complete_clamps_negative_duration(self):
        tracer = make_tracer()
        tracer.complete("x", "c", 5.0, 4.0)
        (span,) = tracer.spans()
        assert span.dur_us == 0.0

    def test_span_contextmanager_uses_clock_and_extra_args(self):
        tracer = make_tracer(start=10.0, step=1.0)
        with tracer.span("serve.request", "serve", trace_id="t-2") as extra:
            extra["cache"] = "hit"
        (span,) = tracer.spans("serve")
        assert span.ts_us == pytest.approx(10.0 * 1e6)
        assert span.dur_us == pytest.approx(1.0 * 1e6)
        assert dict(span.args) == {"cache": "hit", "trace_id": "t-2"}

    def test_span_records_even_when_body_raises(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing", "serve"):
                raise RuntimeError("boom")
        assert len(tracer.spans()) == 1

    def test_instant_stamps_current_clock(self):
        tracer = make_tracer(start=7.0, step=0.0)
        tracer.instant("router.singleflight", "router", trace_id="t-3",
                       args={"role": "follower"})
        instant = [e for e in tracer.events if e.ph == "i"][0]
        assert instant.ts_us == pytest.approx(7.0 * 1e6)
        assert dict(instant.args) == {"role": "follower", "trace_id": "t-3"}

    def test_export_bytes_deterministic(self):
        def build():
            tracer = make_tracer()
            tracer.thread_name(0, "event-loop")
            tracer.complete("b", "c", 100.0, 101.0, trace_id="t")
            tracer.complete("a", "c", 100.0, 101.0, trace_id="t")
            return tracer.to_json()

        first, second = build(), build()
        assert first == second
        names = [
            e["name"] for e in json.loads(first)["traceEvents"]
            if e["ph"] == "X"
        ]
        # Same-timestamp spans sort by name: the merge total order.
        assert names == ["a", "b"]

    def test_write_round_trips(self, tmp_path):
        tracer = make_tracer()
        tracer.complete("x", "c", 1.0, 2.0)
        path = tracer.write(tmp_path / "sub" / "t.trace.json")
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert len(data["traceEvents"]) == 2  # metadata + span


class TestNullRuntimeTracer:
    def test_disabled_and_dropping(self):
        assert NULL_RUNTIME_TRACER.enabled is False
        NULL_RUNTIME_TRACER.complete("x", "c", 0.0, 1.0)
        NULL_RUNTIME_TRACER.instant("x", "c")
        NULL_RUNTIME_TRACER.thread_name(0, "x")
        with NULL_RUNTIME_TRACER.span("x", "c") as extra:
            extra["ignored"] = True
        assert NULL_RUNTIME_TRACER.events == ()


class TestMergeTraces:
    def _write(self, tmp_path, name, pid, spans):
        tracer = RuntimeTracer(name, clock=FakeClock(), pid=pid)
        for span_name, start, end, trace_id in spans:
            tracer.complete(span_name, "serve", start, end,
                            trace_id=trace_id)
        return tracer.write(tmp_path / f"{name}-{pid}.trace.json")

    def test_merges_processes_into_one_timeline(self, tmp_path):
        router = self._write(
            tmp_path, "router", 1, [("router.request", 0.0, 3.0, "t-9")]
        )
        worker = self._write(
            tmp_path, "w0", 2, [("serve.evaluate", 1.0, 2.0, "t-9")]
        )
        merged = merge_traces([router, worker])
        events = merged["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {1, 2}
        assert {e["args"]["trace_id"] for e in spans} == {"t-9"}
        # Metadata rows first, then spans in timestamp order.
        assert [e["ph"] for e in events] == ["M", "M", "X", "X"]

    def test_merge_is_input_order_independent(self, tmp_path):
        a = self._write(tmp_path, "router", 1, [("r", 0.0, 1.0, None)])
        b = self._write(tmp_path, "w0", 2, [("w", 0.5, 0.9, None)])
        assert merge_traces([a, b]) == merge_traces([b, a])

    def test_rejects_non_trace_json(self, tmp_path):
        bogus = tmp_path / "not-a-trace.json"
        bogus.write_text('{"hello": "world"}')
        with pytest.raises(ValueError, match="traceEvents"):
            merge_traces([bogus])

    def test_rejects_empty_inputs(self, tmp_path):
        empty = tmp_path / "empty.trace.json"
        empty.write_text('{"traceEvents": []}')
        with pytest.raises(ValueError, match="no events"):
            merge_traces([empty])

    def test_write_merged_reports_count(self, tmp_path):
        router = self._write(tmp_path, "router", 1, [("r", 0.0, 1.0, None)])
        out, count = write_merged([router], tmp_path / "out" / "m.json")
        assert out.exists()
        assert count == 2
        assert json.loads(out.read_text())["displayTimeUnit"] == "ms"
