"""End-to-end tests for the tracing + metrics outputs.

Three guarantees under test:

1. Tracing is observation-only — instrumented runs produce results
   *exactly equal* to uninstrumented ones, and specs that don't request
   ``trace``/``metrics`` serialize without the keys (so every existing
   golden stays byte-identical).
2. The exported timeline tells the paper's story: 3.7 us switch
   reconfigurations, phase boundaries nested inside their schedules, and
   the failure-recovery sequence of Figures 6 and 7.
3. Trace and metrics sections survive the JSON/cache round trip.
"""

import pytest

from repro.api import (
    FabricSession,
    FailurePlan,
    MetricsRegistry,
    MetricsReport,
    RunResult,
    ScenarioSpec,
    SliceSpec,
    TraceReport,
    UnsupportedOutput,
    figure5b_slices,
    figure6_slices,
    run,
)
from repro.collectives.primitives import Interconnect, build_reduce_scatter_schedule
from repro.obs.tracer import Tracer
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.sim.runner import run_concurrent_schedules
from repro.topology.slices import Slice
from repro.topology.torus import Torus

RECONFIG_US = 3.7


def sim_spec(fabric="photonic", outputs=("trace",), **overrides):
    defaults = dict(
        fabric=fabric,
        slices=figure6_slices(),
        mode="sim",
        outputs=outputs,
        failures=FailurePlan(failed_chips=((1, 2, 0),)),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSpecValidation:
    def test_trace_requires_sim_mode(self):
        with pytest.raises(ValueError, match="sim"):
            ScenarioSpec(
                slices=figure6_slices(), mode="closed_form",
                outputs=("trace",),
            )

    def test_metrics_requires_sim_mode(self):
        with pytest.raises(ValueError, match="sim"):
            ScenarioSpec(
                slices=figure6_slices(), mode="closed_form",
                outputs=("metrics",),
            )


class TestResultSerialization:
    def test_trace_and_metrics_omitted_when_absent(self):
        result = run(ScenarioSpec(
            slices=figure5b_slices(), outputs=("costs",),
        ))
        data = result.to_dict()
        assert "trace" not in data
        assert "metrics" not in data

    def test_round_trip(self):
        result = run(sim_spec(outputs=("trace", "metrics")))
        restored = RunResult.from_json(result.to_json())
        assert restored == result
        assert isinstance(restored.trace, TraceReport)
        assert isinstance(restored.metrics, MetricsReport)

    def test_disk_cache_round_trip(self, tmp_path):
        from repro.api import DiskResultCache, spec_key

        spec = sim_spec(outputs=("trace", "metrics"))
        result = run(spec)
        cache = DiskResultCache(tmp_path)
        cache.put(spec_key(spec), result)
        assert cache.get(spec_key(spec)) == result


class TestPhotonicTrace:
    @pytest.fixture(scope="class")
    def report(self):
        return run(sim_spec()).trace

    def test_reconfiguration_spans_are_3_7_us(self, report):
        durations = [s.dur_us for s in report.spans("reconfig")]
        assert durations  # circuit switching is on the timeline
        assert all(d == pytest.approx(RECONFIG_US) for d in durations)

    def test_failure_recovery_sequence(self, report):
        (failure,) = report.instants("failure")
        assert failure.name == "chip-failure"
        names = [s.name for s in report.spans("recovery")]
        assert "optical-repair" in names
        mzi = [s for s in report.spans("reconfig") if "mzi" in s.name]
        assert mzi  # repair reconfigures real circuits
        recovered = [
            i for i in report.instants("recovery")
            if i.name == "slice-recovered"
        ]
        assert recovered
        # Recovery happens after the failure, never before.
        assert all(s.ts_us >= failure.ts_us for s in report.spans("recovery"))

    def test_filtered_keeps_metadata(self, report):
        filtered = report.filtered(("reconfig",))
        assert filtered.categories() == ("reconfig",)
        assert any(e.ph == "M" for e in filtered.events)

    def test_chrome_export_sorted(self, report):
        events = report.to_chrome()["traceEvents"]
        payload_ts = [e["ts"] for e in events if e["ph"] != "M"]
        assert payload_ts == sorted(payload_ts)
        assert events[0]["ph"] == "M"


class TestElectricalTrace:
    def test_rack_migration_story(self):
        report = run(sim_spec(fabric="electrical")).trace
        # Figure 6a: every replacement candidate is congested ...
        attempts = [
            i for i in report.instants("recovery")
            if i.name.startswith("replacement-candidate")
        ]
        assert attempts
        assert all(
            dict(i.args).get("feasible") is False for i in attempts
        )
        # ... so the fabric pays a full rack migration.
        (migration,) = report.spans("recovery")
        assert migration.name == "rack-migration"
        assert migration.dur_us > 1e6  # checkpoint/restore dominates

    def test_workload_only_trace_has_no_failure(self):
        report = run(sim_spec(failures=FailurePlan())).trace
        assert report.instants("failure") == ()
        assert report.spans("schedule")  # workload still traced


class TestSwitchedBackend:
    def test_trace_unsupported(self):
        with pytest.raises(UnsupportedOutput, match="metrics"):
            run(sim_spec(fabric="switched"))

    def test_metrics_supported(self):
        report = run(sim_spec(
            fabric="switched", outputs=("metrics",),
        )).metrics
        assert report.value("switched.contention_loss_fraction") >= 0


class TestMetricsOutput:
    def test_sim_counters_are_deterministic(self):
        first = run(sim_spec(outputs=("metrics",))).metrics
        second = FabricSession().run(sim_spec(outputs=("metrics",))).metrics
        assert first == second
        assert first.value("sim.flows_completed") > 0
        assert first.value("sim.reconfig_s_total") == pytest.approx(
            4 * RECONFIG_US * 1e-6
        )

    def test_report_is_name_sorted(self):
        report = run(sim_spec(outputs=("metrics",))).metrics
        names = report.names()
        assert list(names) == sorted(names)


class TestInstrumentationIsObservationOnly:
    def test_api_results_equal_uninstrumented(self):
        plain = FabricSession().run(sim_spec(outputs=("telemetry",)))
        observed = FabricSession().run(
            sim_spec(outputs=("telemetry", "trace", "metrics"))
        )
        assert observed.telemetry == plain.telemetry


class TestConcurrentScheduleTracing:
    """Satellite: tracing under run_concurrent_schedules with flows
    injected by the runner's completion callbacks (phase chaining)."""

    def build(self):
        rack = Torus((4, 4, 4))
        a = Slice(name="a", rack=rack, offset=(0, 0, 0), shape=(4, 2, 1))
        b = Slice(name="b", rack=rack, offset=(0, 2, 2), shape=(4, 1, 1))
        schedules = [
            build_reduce_scatter_schedule(a, 1 << 20, Interconnect.OPTICAL),
            build_reduce_scatter_schedule(b, 1 << 20, Interconnect.ELECTRICAL),
        ]
        caps = {link: CHIP_EGRESS_BYTES / 3 for link in rack.links()}
        return schedules, caps

    def test_results_exactly_equal_uninstrumented(self):
        schedules, caps = self.build()
        plain = run_concurrent_schedules(schedules, caps)
        tracer = Tracer()
        traced = run_concurrent_schedules(schedules, caps, tracer=tracer)
        assert traced == plain
        observed, _ = run_concurrent_schedules(
            schedules, caps, telemetry=True, tracer=Tracer()
        )
        assert observed == plain

    def test_span_nesting_matches_phase_boundaries(self):
        schedules, caps = self.build()
        tracer = Tracer()
        results = run_concurrent_schedules(schedules, caps, tracer=tracer)
        for tid, (schedule, result) in enumerate(
            zip(schedules, results), start=1
        ):
            (outer,) = [s for s in tracer.spans("schedule") if s.tid == tid]
            phases = sorted(
                (s for s in tracer.spans("phase") if s.tid == tid),
                key=lambda s: s.ts_us,
            )
            # One phase span per schedule phase, all nested in the
            # schedule span, in order, and matching the measured
            # durations the runner reports.
            assert len(phases) == len(schedule.phases)
            for span, duration in zip(phases, result.phase_durations_s):
                assert span.ts_us >= outer.ts_us - 1e-9
                assert span.end_us <= outer.end_us + 1e-9
                assert span.dur_us == pytest.approx(duration * 1e6, abs=1e-6)
            for earlier, later in zip(phases, phases[1:]):
                assert earlier.end_us <= later.ts_us + 1e-9

    def test_flow_spans_stay_inside_their_phase_windows(self):
        schedules, caps = self.build()
        tracer = Tracer()
        run_concurrent_schedules(schedules, caps, tracer=tracer)
        phases = tracer.spans("phase")
        horizon = max(s.end_us for s in phases)
        for flow in tracer.spans("flow"):
            # Flows are injected by phase-start callbacks, so every flow
            # lies within the union of phase windows.
            assert flow.ts_us >= 0
            assert flow.end_us <= horizon + 1e-9
            assert any(
                p.ts_us - 1e-9 <= flow.ts_us and flow.end_us <= p.end_us + 1e-9
                for p in phases
            )

    def test_thread_names_label_each_schedule(self):
        schedules, caps = self.build()
        tracer = Tracer()
        run_concurrent_schedules(schedules, caps, tracer=tracer)
        labels = {
            dict(e.args)["name"]
            for e in tracer.events
            if e.ph == "M"
        }
        assert labels == {"network", *(s.name for s in schedules)}


class TestSessionInstrumentation:
    def test_registry_sees_hits_misses_and_timing(self):
        registry = MetricsRegistry()
        session = FabricSession(metrics=registry)
        spec = ScenarioSpec(
            fabric="photonic",
            slices=(SliceSpec("Slice-1", (4, 2, 1), (0, 0, 0)),),
            outputs=("costs",),
        )
        session.run(spec)
        session.run(spec)
        snap = registry.snapshot()
        assert snap["session.photonic.cache_misses"]["value"] == 1.0
        assert snap["session.photonic.cache_hits"]["value"] == 1.0
        assert snap["session.photonic.eval_seconds"]["count"] == 1
