"""Golden-equivalence tests for the experiment-API refactor.

Two guarantees:

1. Every pre-refactor CLI command emits byte-identical output to the
   golden transcripts captured from the seed tree (``tests/golden/``).
2. ``repro.api.run(spec)`` reproduces the same Table 1 / Figure 5 /
   Figure 7 numbers as wiring the underlying layers together by hand,
   the way the pre-refactor CLI did.
"""

from pathlib import Path

import pytest

from repro.analysis.utilization import figure5b_layout, rack_utilization
from repro.api import (
    FabricSession,
    FailurePlan,
    ScenarioSpec,
    figure5b_slices,
    figure6_slices,
    run,
    table1_slices,
)
from repro.cli import main
from repro.collectives.primitives import Interconnect, reduce_scatter_cost
from repro.core.fabric import LightpathRackFabric
from repro.core.repair import plan_optical_repair
from repro.topology.slices import SliceAllocator
from repro.topology.torus import Torus
from repro.topology.tpu import TpuRack

GOLDEN_DIR = Path(__file__).parent / "golden"

# (golden file, argv, expected exit code) for every pre-refactor command.
GOLDEN_COMMANDS = [
    ("capabilities", ["capabilities"], 0),
    ("figure3a", ["figure3a"], 0),
    ("figure3b", ["figure3b"], 0),
    ("table1", ["table1"], 0),
    ("table2", ["table2"], 0),
    ("figure5", ["figure5"], 0),
    ("figure6a", ["figure6a"], 0),
    ("figure7", ["figure7"], 0),
    ("blast-radius", ["blast-radius"], 0),
]


class TestCliGolden:
    @pytest.mark.parametrize(
        "name,argv,code", GOLDEN_COMMANDS, ids=[c[0] for c in GOLDEN_COMMANDS]
    )
    def test_output_is_byte_identical_to_seed(self, capsys, name, argv, code):
        golden = (GOLDEN_DIR / f"{name}.txt").read_text()
        assert main(argv) == code
        assert capsys.readouterr().out == golden


class TestObservabilityGolden:
    """The new opt-in outputs are deterministic (sim-time only, no wall
    clock), so they get goldens of their own — and with them switched
    off, the seed goldens above must stay byte-identical."""

    def test_trace_export_matches_golden(self, capsys):
        golden = (GOLDEN_DIR / "trace.json").read_text()
        assert main([
            "trace", "--categories",
            "schedule,phase,reconfig,alpha,failure,recovery,engine",
        ]) == 0
        assert capsys.readouterr().out == golden

    def test_simulate_metrics_matches_golden(self, capsys):
        golden = (GOLDEN_DIR / "metrics.json").read_text()
        assert main(["simulate", "--metrics", "-"]) == 0
        out = capsys.readouterr().out
        # "-" interleaves the metrics JSON before the telemetry table.
        assert out.startswith(golden)

    def test_golden_trace_contains_the_recovery_story(self):
        import json

        events = json.loads(
            (GOLDEN_DIR / "trace.json").read_text()
        )["traceEvents"]
        reconfig = [
            e for e in events if e.get("cat") == "reconfig" and e["ph"] == "X"
        ]
        assert reconfig
        assert all(abs(e["dur"] - 3.7) < 1e-9 for e in reconfig)
        assert any(e.get("cat") == "failure" for e in events)
        assert any(
            e.get("cat") == "recovery" and e["name"] == "optical-repair"
            for e in events
        )


class TestApiEquivalence:
    def test_table1_costs_match_direct_cost_model(self):
        session = FabricSession()
        spec = ScenarioSpec(slices=table1_slices(), outputs=("costs",))
        results = session.compare(spec, fabrics=("electrical", "photonic"))

        slc = next(
            s for s in session.allocator(spec).slices if s.name == "Slice-1"
        )
        for fabric, interconnect in (
            ("electrical", Interconnect.ELECTRICAL),
            ("photonic", Interconnect.OPTICAL),
        ):
            expected = reduce_scatter_cost(slc, interconnect)
            got = results[fabric].costs.by_name("Slice-1").cost
            assert got == expected

    def test_figure5_utilization_matches_direct_layout(self):
        result = run(ScenarioSpec(
            slices=figure5b_slices(), outputs=("utilization",),
        ))
        expected = rack_utilization(figure5b_layout())
        assert len(result.utilization) == len(expected)
        for got, want in zip(result.utilization, expected):
            assert got.name == want.name
            assert got.shape == want.shape
            assert got.electrical_fraction == want.electrical_fraction
            assert got.optical_fraction == want.optical_fraction

    def test_figure7_repair_matches_direct_planner(self):
        failed = (1, 2, 0)
        result = run(ScenarioSpec(
            fabric="photonic",
            slices=figure6_slices(),
            outputs=("repair",),
            failures=FailurePlan(failed_chips=(failed,)),
        ))

        rack = TpuRack(0, shape=(4, 4, 4))
        fabric = LightpathRackFabric(rack)
        allocator = SliceAllocator(Torus((4, 4, 4)))
        for entry in figure6_slices():
            allocator.allocate(entry.name, entry.shape, entry.offset)
        rack.fail_chip(failed)
        plan = plan_optical_repair(
            fabric, allocator, allocator.slice_of(failed), failed
        )

        repair = result.repair
        assert repair.feasible
        assert repair.replacement == plan.replacement
        assert repair.fibers_used == plan.fibers_used
        assert repair.setup_latency_s == plan.setup_latency_s
        assert len(repair.circuits) == len(plan.circuits)
        for got, circuit in zip(repair.circuits, plan.circuits):
            assert (got.src, got.dst) == (circuit.src, circuit.dst)
