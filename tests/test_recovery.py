"""Tests for electrical recovery analysis (Figures 6a/6b) and migration."""

import pytest

from repro.failures.recovery import (
    ElectricalRecoveryAnalysis,
    RackMigrationPolicy,
)
from repro.topology.slices import SliceAllocator
from repro.topology.torus import Torus


def figure6a_scenario():
    """Single rack: Slice-3 fails, only Slice-2's old region is free."""
    rack = Torus((4, 4, 4))
    allocator = SliceAllocator(rack)
    slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))
    allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
    return rack, allocator, slice3


def figure6b_scenario():
    """Two OCS-joined racks as a 4x4x8 torus; free chips only in rack 2."""
    torus = Torus((4, 4, 8))
    allocator = SliceAllocator(torus)
    slice2 = allocator.allocate("Slice-2", (4, 2, 1), (0, 0, 0))
    allocator.allocate("rack1-B", (4, 2, 1), (0, 2, 0))
    allocator.allocate("rack1-C", (4, 4, 1), (0, 0, 1))
    allocator.allocate("rack1-D", (4, 4, 1), (0, 0, 2))
    allocator.allocate("rack1-E", (4, 4, 1), (0, 0, 3))
    allocator.allocate("Slice-1", (4, 4, 3), (0, 0, 4))
    allocator.allocate("rack2-D", (4, 2, 1), (0, 0, 7))
    allocator.allocate("rack2-E", (2, 2, 1), (0, 2, 7))
    return torus, allocator, slice2


class TestFigure6a:
    def test_no_congestion_free_replacement_exists(self):
        rack, allocator, slice3 = figure6a_scenario()
        analysis = ElectricalRecoveryAnalysis(rack, allocator, max_hops=5)
        assert not analysis.congestion_free_replacement_exists(slice3, (1, 2, 0))

    def test_every_candidate_congests(self):
        rack, allocator, slice3 = figure6a_scenario()
        analysis = ElectricalRecoveryAnalysis(rack, allocator, max_hops=5)
        attempts = analysis.evaluate_all_free_chips(slice3, (1, 2, 0))
        assert len(attempts) == 8
        for attempt in attempts:
            assert not attempt.feasible
            assert attempt.total_congested_links >= 1

    def test_endpoints_flank_failed_chip(self):
        rack, allocator, slice3 = figure6a_scenario()
        analysis = ElectricalRecoveryAnalysis(rack, allocator)
        endpoints = analysis.required_endpoints(slice3, (1, 2, 0))
        assert set(endpoints) == {(0, 2, 0), (2, 2, 0), (1, 1, 0), (1, 3, 0)}

    def test_busy_links_are_bidirectional(self):
        rack, allocator, slice3 = figure6a_scenario()
        analysis = ElectricalRecoveryAnalysis(rack, allocator)
        busy = analysis.busy_links()
        assert all(link.reverse in busy for link in busy)

    def test_feasible_when_rack_is_empty(self):
        rack = Torus((4, 4, 4))
        allocator = SliceAllocator(rack)
        slc = allocator.allocate("only", (4, 4, 1), (0, 0, 0))
        analysis = ElectricalRecoveryAnalysis(rack, allocator, max_hops=4)
        # With the rest of the rack idle, an adjacent free chip in the
        # next plane is reachable congestion-free.
        assert analysis.congestion_free_replacement_exists(slc, (1, 2, 0))

    def test_dims_override_restricts_busy_set(self):
        rack, allocator, slice3 = figure6a_scenario()
        quiet = ElectricalRecoveryAnalysis(
            rack,
            allocator,
            dims_per_slice={"Slice-4": [], "Slice-1": [], "Slice-3": [0, 1]},
        )
        # With neighbouring tenants silenced, Z columns are free.
        assert quiet.congestion_free_replacement_exists(slice3, (1, 2, 0))


class TestFigure6b:
    def test_no_congestion_free_replacement_across_racks(self):
        torus, allocator, slice2 = figure6b_scenario()
        analysis = ElectricalRecoveryAnalysis(torus, allocator, max_hops=5)
        assert not analysis.congestion_free_replacement_exists(slice2, (0, 0, 0))

    def test_free_chips_are_in_rack2_only(self):
        _torus, allocator, _slice2 = figure6b_scenario()
        free = allocator.free_chips()
        assert free
        assert all(chip[2] >= 4 for chip in free)

    def test_candidate_paths_forced_through_z(self):
        torus, allocator, slice2 = figure6b_scenario()
        analysis = ElectricalRecoveryAnalysis(torus, allocator, max_hops=6)
        attempt = analysis.evaluate_free_chip(
            slice2, (0, 0, 0), allocator.free_chips()[0]
        )
        for best in attempt.best_paths:
            if len(best.path) > 1:
                dims = {
                    torus.path_links(list(best.path))[0].dimension(torus.shape)
                }
                assert 2 in dims or best.congested_links


class TestRackMigrationPolicy:
    def test_blast_radius_is_whole_rack(self):
        assert RackMigrationPolicy().blast_radius_chips() == 64

    def test_recovery_latency_dominated_by_checkpoint(self):
        policy = RackMigrationPolicy()
        assert policy.recovery_latency_s() > 0.9 * policy.checkpoint_restore_s

    def test_spare_racks(self):
        assert RackMigrationPolicy().spare_racks_needed(3) == 3
        with pytest.raises(ValueError):
            RackMigrationPolicy().spare_racks_needed(-1)
