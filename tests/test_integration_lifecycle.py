"""Integration: a full fabric lifecycle through the controller.

Admits the Figure 5b tenants, runs steered collectives on the simulator
with telemetry, injects failures, repairs them optically, and checks the
fabric's books balance at every step — the end-to-end path a deployment
would exercise.
"""

import pytest

from repro.collectives.cost_model import CostParameters
from repro.core.controller import FabricController
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.sim.engine import EventEngine
from repro.sim.flows import Flow
from repro.sim.telemetry import InstrumentedNetwork


@pytest.fixture
def controller():
    c = FabricController()
    c.admit("Slice-3", (4, 4, 1), (0, 0, 0))
    c.admit("Slice-4", (4, 4, 2), (0, 0, 1))
    c.admit("Slice-1", (4, 2, 1), (0, 0, 3))
    return c


class TestLifecycle:
    def test_admission_leaves_spares(self, controller):
        assert len(controller.spare_chips()) == 8

    def test_predicted_vs_executed_schedule(self, controller):
        n_bytes = 1 << 22
        schedule = controller.build_schedule("Slice-3", n_bytes)
        predicted = controller.predict_reduce_scatter_s("Slice-3", n_bytes)
        # Execute on an instrumented network at the steered rate.
        engine = EventEngine()
        links = {
            link: CHIP_EGRESS_BYTES / 2
            for link in controller.rack.torus.links()
        }
        network = InstrumentedNetwork(engine, links)
        params = CostParameters()
        elapsed = 0.0
        for phase in schedule.phases:
            elapsed += phase.reconfigurations * params.reconfig_s
            if not phase.transfers:
                continue
            elapsed += params.alpha_s
            start = engine.now_s
            for i, transfer in enumerate(phase.transfers):
                network.inject(
                    Flow((id(phase), i), transfer.links, transfer.n_bytes)
                )
            network.run_until_idle()
            elapsed += engine.now_s - start
        assert elapsed == pytest.approx(predicted, rel=1e-6)
        # Telemetry saw traffic only on the steered dimensions.
        assert network.telemetry.busiest_links(1)[0][1] > 0

    def test_failure_repair_failure_again(self, controller):
        first = controller.handle_failure((1, 2, 0))
        assert first is not None
        spares_after_first = len(controller.spare_chips())
        second = controller.handle_failure((3, 3, 0))
        assert second is not None
        assert second.replacement != first.replacement
        assert len(controller.spare_chips()) == spares_after_first - 1
        state = controller.tenant("Slice-3")
        assert len(state.repairs) == 2
        assert controller.fabric.fibers_in_use() == (
            first.fibers_used + second.fibers_used
        )

    def test_spare_not_reused_across_tenants(self, controller):
        plan3 = controller.handle_failure((1, 2, 0))
        plan4 = controller.handle_failure((1, 2, 1))
        assert plan3.replacement != plan4.replacement

    def test_eviction_returns_capacity_but_keeps_failures(self, controller):
        controller.handle_failure((1, 2, 0))
        controller.evict("Slice-4")
        assert "Slice-4" not in controller.tenants
        # Failed chip stays failed; freed chips become spares.
        assert controller.rack.is_failed((1, 2, 0))
        assert len(controller.spare_chips()) >= 32

    def test_status_consistent_after_everything(self, controller):
        controller.handle_failure((1, 2, 0))
        controller.evict("Slice-1")
        status = controller.status()
        # Spare reservations live in the allocator, not the tenant table.
        assert set(status["tenants"]) == {"Slice-3", "Slice-4"}
        assert status["tenants"]["Slice-3"]["repairs"] == 1
        assert status["failed_chips"] == 1
        assert status["active_circuits"] >= 2
