"""Tests for blast-radius metrics (Section 4.2)."""

import pytest

from repro.failures.blast_radius import (
    OpticalRepairPolicy,
    compare_policies,
    improvement_factor,
)
from repro.failures.inject import FleetFailureModel
from repro.failures.recovery import RackMigrationPolicy
from repro.topology.tpu import TpuCluster


def sample_events(n_racks=8, seed=0):
    cluster = TpuCluster(rack_count=n_racks)
    return FleetFailureModel(cluster, seed=seed).sample_failures(90 * 24 * 3600.0)


class TestPolicies:
    def test_optical_blast_radius_is_server(self):
        assert OpticalRepairPolicy().blast_radius_chips() == 4

    def test_optical_recovery_is_microseconds(self):
        assert OpticalRepairPolicy().recovery_latency_s() == pytest.approx(3.7e-6)

    def test_rack_policy_is_64_chips(self):
        assert RackMigrationPolicy().blast_radius_chips() == 64


class TestComparison:
    def test_reports_cover_same_failures(self):
        events = sample_events()
        rack_report, optical_report = compare_policies(events)
        assert rack_report.failures == optical_report.failures == len(events)

    def test_blast_radius_shrinks_16x(self):
        events = sample_events()
        rack_report, optical_report = compare_policies(events)
        assert improvement_factor(rack_report, optical_report) == pytest.approx(
            64 / 4
        )

    def test_chip_impact_scales_with_failures(self):
        events = sample_events()
        rack_report, _ = compare_policies(events)
        assert rack_report.total_chip_impact == 64 * len(events)

    def test_downtime_gap_is_enormous(self):
        events = sample_events()
        rack_report, optical_report = compare_policies(events)
        if events:
            assert rack_report.total_downtime_s / optical_report.total_downtime_s > 1e6

    def test_lost_chip_seconds_consistent(self):
        events = sample_events()
        rack_report, optical_report = compare_policies(events)
        assert rack_report.lost_chip_seconds == pytest.approx(
            rack_report.total_chip_impact * RackMigrationPolicy().recovery_latency_s()
        )
        assert optical_report.lost_chip_seconds == pytest.approx(
            optical_report.total_chip_impact * OpticalRepairPolicy().recovery_latency_s()
        )

    def test_empty_trace(self):
        rack_report, optical_report = compare_policies([])
        assert rack_report.failures == 0
        assert improvement_factor(rack_report, optical_report) == float("inf")
